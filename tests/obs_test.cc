// The observability plane (src/obs/): HDR histogram layout and merge
// algebra, trace recording (span nesting, deterministic thread merge, ring
// overflow accounting, JSON schema validation), the cost discipline
// (tracing off = one null check: zero allocation, asserted here with a
// counting operator new), and the metrics registry (exposition, lint,
// counter monotonicity).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <limits>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "graph/generators.h"
#include "obs/histogram.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"
#include "partition/partitioner.h"
#include "util/rng.h"

// ---------------------------------------------------------------------------
// Global allocation counter for the zero-allocation-when-disabled test.
// Counting replacements of the global operator new/delete; sanitizer builds
// provide their own interposed allocators, so the counting (and the test
// that reads it) is compiled out there.
// ---------------------------------------------------------------------------
#if !defined(__SANITIZE_ADDRESS__) && !defined(__SANITIZE_THREAD__) && \
    !defined(ADDRESS_SANITIZER) && !defined(THREAD_SANITIZER)
#if defined(__has_feature)
#if !__has_feature(address_sanitizer) && !__has_feature(thread_sanitizer)
#define DGS_OBS_TEST_COUNT_ALLOCS 1
#endif
#else
#define DGS_OBS_TEST_COUNT_ALLOCS 1
#endif
#endif

#ifdef DGS_OBS_TEST_COUNT_ALLOCS
namespace {
std::atomic<uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#endif  // DGS_OBS_TEST_COUNT_ALLOCS

namespace dgs {
namespace {

using obs::Histogram;
using obs::HistogramLayout;
using obs::HistogramSnapshot;
using obs::MetricsRegistry;
using obs::TraceRecorder;
using obs::TraceSpan;

// Restores a clean global tracing state however a test exits.
struct TracingOff {
  ~TracingOff() { TraceRecorder::Uninstall(); }
};

// --------------------------------------------------------------------------
// Histogram layout properties.
// --------------------------------------------------------------------------

TEST(HistogramLayoutTest, EveryValueLandsInItsOwnBucketBounds) {
  // Probe exact values, bucket boundaries, and their neighbors across the
  // whole range, plus a pseudo-random sweep.
  std::vector<uint64_t> probes = {0, 1, 31, 32, 33, 63, 64, 65,
                                  UINT64_MAX - 1, UINT64_MAX};
  for (uint32_t shift = 6; shift < 64; ++shift) {
    const uint64_t v = uint64_t{1} << shift;
    probes.push_back(v - 1);
    probes.push_back(v);
    probes.push_back(v + 1);
  }
  Rng rng(7);
  for (int i = 0; i < 2000; ++i) probes.push_back(rng.Next());

  for (uint64_t v : probes) {
    const uint32_t idx = HistogramLayout::BucketIndex(v);
    ASSERT_LT(idx, HistogramLayout::kNumBuckets) << v;
    EXPECT_LE(HistogramLayout::BucketLowerBound(idx), v) << v;
    EXPECT_GE(HistogramLayout::BucketUpperBound(idx), v) << v;
  }
}

TEST(HistogramLayoutTest, BucketIndexIsMonotone) {
  // Monotone across each boundary: lower_bound(i) - 1 maps below i.
  for (uint32_t idx = 1; idx < HistogramLayout::kNumBuckets; ++idx) {
    const uint64_t lower = HistogramLayout::BucketLowerBound(idx);
    EXPECT_EQ(HistogramLayout::BucketIndex(lower), idx);
    EXPECT_LT(HistogramLayout::BucketIndex(lower - 1), idx);
  }
}

TEST(HistogramLayoutTest, RelativeErrorIsBoundedByPrecision) {
  // Bucket width <= value / 2^kPrecisionBits for v >= kSubBuckets (~3%).
  Rng rng(11);
  for (int i = 0; i < 5000; ++i) {
    const uint64_t v = rng.Next();
    if (v < HistogramLayout::kSubBuckets) continue;
    const uint32_t idx = HistogramLayout::BucketIndex(v);
    const uint64_t width = HistogramLayout::BucketUpperBound(idx) -
                           HistogramLayout::BucketLowerBound(idx) + 1;
    EXPECT_LE(width, v / HistogramLayout::kSubBuckets + 1) << v;
  }
  // Values below the precision cutoff are exact.
  for (uint64_t v = 0; v < HistogramLayout::kSubBuckets; ++v) {
    const uint32_t idx = HistogramLayout::BucketIndex(v);
    EXPECT_EQ(HistogramLayout::BucketLowerBound(idx), v);
    EXPECT_EQ(HistogramLayout::BucketUpperBound(idx), v);
  }
}

TEST(HistogramSnapshotTest, MergeEqualsCombinedRecording) {
  Rng rng(2014);
  HistogramSnapshot a, b, combined;
  for (int i = 0; i < 4000; ++i) {
    const uint64_t v = rng.Next() >> (rng.Next() % 64);
    combined.Record(v);
    (i % 2 == 0 ? a : b).Record(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_EQ(a.sum(), combined.sum());
  EXPECT_EQ(a.min(), combined.min());
  EXPECT_EQ(a.max(), combined.max());
  for (uint32_t i = 0; i < HistogramLayout::kNumBuckets; ++i) {
    ASSERT_EQ(a.BucketCount(i), combined.BucketCount(i)) << i;
  }
  for (double q : {0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0}) {
    EXPECT_EQ(a.ValueAtQuantile(q), combined.ValueAtQuantile(q)) << q;
  }
}

TEST(HistogramSnapshotTest, ExtremesAndEmpty) {
  HistogramSnapshot empty;
  EXPECT_EQ(empty.count(), 0u);
  EXPECT_EQ(empty.ValueAtQuantile(0.99), 0u);
  EXPECT_EQ(empty.mean(), 0.0);
  EXPECT_EQ(empty.min(), 0u);

  HistogramSnapshot h;
  h.Record(0);
  h.Record(1);
  h.Record(UINT64_MAX);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), UINT64_MAX);
  // The quantile is clamped to the observed max, so p100 is exact even in
  // the saturating top bucket.
  EXPECT_EQ(h.ValueAtQuantile(1.0), UINT64_MAX);
  EXPECT_EQ(h.ValueAtQuantile(0.0), 0u);
}

TEST(HistogramTest, ConcurrentRecordersMatchSequentialTotals) {
  Histogram hist;
  constexpr int kThreads = 4, kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hist, t] {
      Rng rng(100 + t);
      for (int i = 0; i < kPerThread; ++i) {
        hist.Record(rng.Next() % 1000000);
      }
    });
  }
  for (auto& th : threads) th.join();
  const HistogramSnapshot snap = hist.Snapshot();
  EXPECT_EQ(snap.count(), uint64_t{kThreads} * kPerThread);
  // The recorder carries exact sum/min/max into the snapshot.
  uint64_t expect_sum = 0;
  for (int t = 0; t < kThreads; ++t) {
    Rng rng(100 + t);
    for (int i = 0; i < kPerThread; ++i) expect_sum += rng.Next() % 1000000;
  }
  EXPECT_EQ(snap.sum(), expect_sum);
  EXPECT_LT(snap.min(), 1000000u);
  EXPECT_LT(snap.max(), 1000000u);
}

TEST(HistogramTest, RecordSecondsClampsPathologicalInputs) {
  Histogram hist;
  hist.RecordSeconds(-1.0);
  hist.RecordSeconds(std::numeric_limits<double>::quiet_NaN());
  hist.RecordSeconds(1e-9);  // 1 ns
  const HistogramSnapshot snap = hist.Snapshot();
  EXPECT_EQ(snap.count(), 3u);
  EXPECT_EQ(snap.max(), 1u);
}

// --------------------------------------------------------------------------
// Trace recording.
// --------------------------------------------------------------------------

TEST(TraceTest, SpanNestingIsPreservedInTimestamps) {
  TracingOff guard;
  TraceRecorder recorder;
  TraceRecorder::Install(&recorder);
  {
    TraceSpan outer("test", "outer");
    {
      TraceSpan inner("test", "inner");
      inner.Arg("k", uint64_t{42});
    }
  }
  TraceRecorder::Uninstall();
  const std::string json = recorder.ToJson();
  ASSERT_TRUE(obs::ValidateTraceJson(json, {"outer", "inner"}).ok()) << json;
  // The inner span closed first, so it sorts before the outer at flush
  // (later start), and must be contained within the outer's window.
  const size_t inner_pos = json.find("\"inner\"");
  const size_t outer_pos = json.find("\"outer\"");
  ASSERT_NE(inner_pos, std::string::npos);
  ASSERT_NE(outer_pos, std::string::npos);
  EXPECT_EQ(recorder.recorded(), 2u);
  EXPECT_EQ(recorder.dropped(), 0u);
}

TEST(TraceTest, ThreadMergeIsDeterministic) {
  // Two recorders fed the same logical events from different thread
  // shardings must flush byte-identical JSON: the merge sorts by the total
  // order, not arrival. Explicit timestamps before the recorder's origin
  // all clamp to ts 0, so the (lane, dur) pair — distinct per event — is
  // what carries the order here.
  auto emit = [](TraceRecorder& rec, int threads) {
    std::vector<std::thread> workers;
    for (int t = 0; t < threads; ++t) {
      workers.emplace_back([&rec, t, threads] {
        for (int i = t; i < 64; i += threads) {
          rec.Complete("test", i % 2 == 0 ? "even" : "odd",
                       /*start_mono_ns=*/1, /*dur_ns=*/static_cast<uint64_t>(i) + 1,
                       /*lane=*/200 + (i % 3),
                       {{"i", static_cast<uint64_t>(i)}});
        }
      });
    }
    for (auto& w : workers) w.join();
  };
  TraceRecorder one_thread, four_threads;
  emit(one_thread, 1);
  emit(four_threads, 4);
  EXPECT_EQ(one_thread.ToJson(), four_threads.ToJson());
  EXPECT_EQ(one_thread.recorded(), 64u);
}

TEST(TraceTest, RingOverflowCountsDroppedEvents) {
  TraceRecorder recorder(/*ring_capacity=*/16);
  for (int i = 0; i < 100; ++i) {
    recorder.Instant("test", "tick", {}, /*lane=*/1,
                     /*mono_ns=*/1000 + static_cast<uint64_t>(i));
  }
  EXPECT_EQ(recorder.recorded(), 100u);
  EXPECT_EQ(recorder.dropped(), 84u);  // 100 - 16 overwritten
  // The survivors are the newest 16.
  const std::string json = recorder.ToJson();
  EXPECT_TRUE(obs::ValidateTraceJson(json, {"tick"}).ok());
}

TEST(TraceTest, ValidateTraceJsonRejectsMalformedAndMissingSpans) {
  // Not JSON at all.
  EXPECT_FALSE(obs::ValidateTraceJson("not json", {}).ok());
  // JSON but not a trace object.
  EXPECT_FALSE(obs::ValidateTraceJson("[1,2,3]", {}).ok());
  // Trace object with a malformed event (ph must be X/i/M).
  EXPECT_FALSE(obs::ValidateTraceJson(
                   R"({"traceEvents":[{"name":"a","cat":"c","ph":"Q",)"
                   R"("pid":1,"tid":1,"ts":0}]})",
                   {})
                   .ok());
  // X-phase event without dur.
  EXPECT_FALSE(obs::ValidateTraceJson(
                   R"({"traceEvents":[{"name":"a","cat":"c","ph":"X",)"
                   R"("pid":1,"tid":1,"ts":0}]})",
                   {})
                   .ok());
  // Valid event, but a required span is absent.
  const std::string valid =
      R"({"traceEvents":[{"name":"a","cat":"c","ph":"X",)"
      R"("pid":1,"tid":1,"ts":0,"dur":1}]})";
  EXPECT_TRUE(obs::ValidateTraceJson(valid, {"a"}).ok());
  const Status missing = obs::ValidateTraceJson(valid, {"b"});
  EXPECT_EQ(missing.code(), StatusCode::kNotFound);
}

TEST(TraceTest, DisabledRecordingIsAllocationFreeAndUnrecorded) {
  TraceRecorder::Uninstall();
  TraceRecorder recorder;  // exists but is NOT installed

#ifdef DGS_OBS_TEST_COUNT_ALLOCS
  const uint64_t before = g_allocations.load(std::memory_order_relaxed);
#endif
  for (int i = 0; i < 10000; ++i) {
    TraceSpan span("test", "disabled");
    span.Arg("i", static_cast<uint64_t>(i));
    span.Arg("s", "static");
    obs::TraceInstant("test", "disabled_instant",
                      {{"x", static_cast<uint64_t>(i)}});
  }
#ifdef DGS_OBS_TEST_COUNT_ALLOCS
  const uint64_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after, before)
      << "disabled instrument sites must not allocate";
#endif
  EXPECT_EQ(recorder.recorded(), 0u);
}

TEST(TraceTest, EngineMatchEmitsTheDistributedSpanTree) {
  TracingOff guard;
  Rng rng(2014);
  Graph g = WebGraph(400, 1600, kDefaultAlphabet, rng);
  auto assignment = PartitionWithBoundaryRatio(g, 4, 0.3, rng);
  auto engine = Engine::Create(g, assignment, 4);
  ASSERT_TRUE(engine.ok());
  std::vector<Pattern> queries;
  for (int i = 0; i < 8 && queries.empty(); ++i) {
    PatternSpec spec;
    spec.num_nodes = 3;
    spec.num_edges = 3;
    auto q = ExtractPattern(g, spec, rng);
    if (q.ok()) queries.push_back(*q);
  }
  ASSERT_FALSE(queries.empty());

  TraceRecorder recorder;
  TraceRecorder::Install(&recorder);
  auto outcome = (*engine)->Match(queries[0], QueryOptions{});
  TraceRecorder::Uninstall();
  ASSERT_TRUE(outcome.ok());

  const std::string json = recorder.ToJson();
  const Status valid = obs::ValidateTraceJson(
      json, {"engine.match", "engine.bind", "engine.run", "cluster.run",
             "cluster.round", "cluster.merge", "site.compute"});
  EXPECT_TRUE(valid.ok()) << valid.ToString();
}

// --------------------------------------------------------------------------
// Metrics registry.
// --------------------------------------------------------------------------

TEST(MetricsRegistryTest, PrometheusTextExposesAllKinds) {
  MetricsRegistry registry;
  registry.AddCounter("dgs_test_total", "a counter", [] { return 3.0; });
  registry.AddGauge("dgs_test_depth", "a gauge", [] { return 1.5; });
  registry.AddHistogram(
      "dgs_test_latency_seconds", "a histogram",
      [] {
        HistogramSnapshot h;
        h.Record(1000000000);  // 1s in ns
        h.Record(2000000000);
        return h;
      });
  ASSERT_TRUE(registry.Lint().ok());
  const std::string text = registry.PrometheusText();
  EXPECT_NE(text.find("# TYPE dgs_test_total counter"), std::string::npos);
  EXPECT_NE(text.find("dgs_test_total 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE dgs_test_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("dgs_test_latency_seconds{quantile=\"0.99\"}"),
            std::string::npos);
  EXPECT_NE(text.find("dgs_test_latency_seconds_count 2"), std::string::npos);
  // JSON dump mentions the same metrics.
  const std::string json = registry.JsonDump();
  EXPECT_NE(json.find("\"dgs_test_total\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
}

TEST(MetricsRegistryTest, LintCatchesDuplicatesAndBadNames) {
  {
    MetricsRegistry registry;
    registry.AddCounter("dgs_dup_total", "one", [] { return 0.0; });
    registry.AddCounter("dgs_dup_total", "two", [] { return 0.0; });
    EXPECT_FALSE(registry.Lint().ok());
  }
  {
    // A histogram expands to name{quantile}, name_sum, name_count — a
    // scalar colliding with an expansion is a duplicate too.
    MetricsRegistry registry;
    registry.AddHistogram("dgs_h_seconds", "h",
                          [] { return HistogramSnapshot{}; });
    registry.AddCounter("dgs_h_seconds_count", "collides",
                        [] { return 0.0; });
    EXPECT_FALSE(registry.Lint().ok());
  }
  {
    MetricsRegistry registry;
    registry.AddCounter("0bad name", "bad", [] { return 0.0; });
    EXPECT_FALSE(registry.Lint().ok());
  }
}

TEST(MetricsRegistryTest, CheckMonotonicFlagsCounterRegression) {
  double value = 5.0;
  MetricsRegistry registry;
  registry.AddCounter("dgs_mono_total", "counter", [&] { return value; });
  registry.AddGauge("dgs_free_gauge", "gauge", [&] { return value * 2; });
  const std::string before = registry.PrometheusText();
  value = 7.0;  // counter grows, fine
  const std::string grew = registry.PrometheusText();
  EXPECT_TRUE(MetricsRegistry::CheckMonotonic(before, grew).ok());
  value = 1.0;  // counter shrank: violation
  const std::string shrank = registry.PrometheusText();
  EXPECT_FALSE(MetricsRegistry::CheckMonotonic(before, shrank).ok());
  // Gauges may move freely — only counters are held to monotonicity, so
  // the "grew" pair passing above already covers the moving gauge.
}

}  // namespace
}  // namespace dgs
