#include "core/booleq.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

namespace dgs {
namespace {

std::set<VarId> PropagateAll(EquationSystem& s) {
  std::set<VarId> falses;
  s.Propagate([&](VarId x) { falses.insert(x); });
  return falses;
}

TEST(EquationSystemTest, EmptyGroupIsImmediatelyFalse) {
  EquationSystem s;
  VarId x = s.NewVar();
  s.SetEquation(x, {{}});
  EXPECT_EQ(PropagateAll(s), (std::set<VarId>{x}));
  EXPECT_TRUE(s.IsFalse(x));
}

TEST(EquationSystemTest, NoEquationStaysUndecided) {
  EquationSystem s;
  VarId x = s.NewVar();
  EXPECT_EQ(PropagateAll(s).size(), 0u);
  EXPECT_FALSE(s.IsFalse(x));
  EXPECT_FALSE(s.HasEquation(x));
}

TEST(EquationSystemTest, AndOfOrsSemantics) {
  // x = (a | b) & (c). Killing a alone leaves x alive; killing c kills x.
  EquationSystem s;
  VarId a = s.NewVar(), b = s.NewVar(), c = s.NewVar(), x = s.NewVar();
  s.SetEquation(x, {{a, b}, {c}});
  s.AssertFalse(a);
  PropagateAll(s);
  EXPECT_FALSE(s.IsFalse(x));
  s.AssertFalse(c);
  auto falses = PropagateAll(s);
  EXPECT_TRUE(s.IsFalse(x));
  EXPECT_EQ(falses, (std::set<VarId>{c, x}));
  (void)b;
}

TEST(EquationSystemTest, ChainPropagation) {
  // x0 <- x1 <- x2 <- leaf; killing the leaf kills the whole chain.
  EquationSystem s;
  VarId leaf = s.NewVar();
  VarId x2 = s.NewVar(), x1 = s.NewVar(), x0 = s.NewVar();
  s.SetEquation(x2, {{leaf}});
  s.SetEquation(x1, {{x2}});
  s.SetEquation(x0, {{x1}});
  s.AssertFalse(leaf);
  EXPECT_EQ(PropagateAll(s).size(), 4u);
  EXPECT_TRUE(s.IsFalse(x0));
}

TEST(EquationSystemTest, CycleSurvivesUnderGreatestFixpoint) {
  // x = y, y = x: the greatest solution is both true (undecided).
  EquationSystem s;
  VarId x = s.NewVar(), y = s.NewVar();
  s.SetEquation(x, {{y}});
  s.SetEquation(y, {{x}});
  EXPECT_EQ(PropagateAll(s).size(), 0u);
  EXPECT_FALSE(s.IsFalse(x));
  EXPECT_FALSE(s.IsFalse(y));
}

TEST(EquationSystemTest, CycleWithExternalSupportDies) {
  // x = y | e, y = x. Killing e must NOT kill the x/y cycle (they still
  // support each other under gfp semantics).
  EquationSystem s;
  VarId e = s.NewVar(), x = s.NewVar(), y = s.NewVar();
  s.SetEquation(x, {{y, e}});
  s.SetEquation(y, {{x}});
  s.AssertFalse(e);
  PropagateAll(s);
  EXPECT_FALSE(s.IsFalse(x));
  EXPECT_FALSE(s.IsFalse(y));
}

TEST(EquationSystemTest, BrokenCycleDies) {
  // x = y & e, y = x. Killing e kills x, which kills y.
  EquationSystem s;
  VarId e = s.NewVar(), x = s.NewVar(), y = s.NewVar();
  s.SetEquation(x, {{y}, {e}});
  s.SetEquation(y, {{x}});
  s.AssertFalse(e);
  PropagateAll(s);
  EXPECT_TRUE(s.IsFalse(x));
  EXPECT_TRUE(s.IsFalse(y));
}

TEST(EquationSystemTest, SetEquationWithAlreadyFalseMembers) {
  EquationSystem s;
  VarId a = s.NewVar(), b = s.NewVar(), x = s.NewVar();
  s.AssertFalse(a);
  PropagateAll(s);
  s.SetEquation(x, {{a, b}});
  EXPECT_FALSE(s.IsFalse(x));  // b still supports
  VarId y = s.NewVar();
  s.SetEquation(y, {{a}});  // only dead support
  PropagateAll(s);
  EXPECT_TRUE(s.IsFalse(y));
}

TEST(EquationSystemTest, OnFalseFiresExactlyOnce) {
  EquationSystem s;
  VarId a = s.NewVar(), x = s.NewVar();
  s.SetEquation(x, {{a}});
  s.AssertFalse(a);
  s.AssertFalse(a);  // duplicate assert is a no-op
  std::map<VarId, int> fired;
  s.Propagate([&](VarId v) { ++fired[v]; });
  EXPECT_EQ(fired[a], 1);
  EXPECT_EQ(fired[x], 1);
}

TEST(EquationSystemTest, CopyIsIndependent) {
  EquationSystem s;
  VarId a = s.NewVar(), x = s.NewVar();
  s.SetEquation(x, {{a}});
  EquationSystem copy = s;
  copy.AssertFalse(a);
  copy.Propagate([](VarId) {});
  EXPECT_TRUE(copy.IsFalse(x));
  EXPECT_FALSE(s.IsFalse(x));
}

// --- ReduceToFrontier ------------------------------------------------------

struct ReductionFixture {
  EquationSystem system;
  std::vector<VarId> frontier;
  std::vector<uint64_t> keys;

  bool IsFrontier(VarId x) const {
    for (VarId f : frontier) {
      if (f == x) return true;
    }
    return false;
  }

  ReducedSystem Reduce(const std::vector<VarId>& roots) {
    return ReduceToFrontier(
        system, roots, [this](VarId x) { return IsFrontier(x); },
        [this](VarId x) { return keys[x]; });
  }
};

const ReducedEntry* FindEntry(const ReducedSystem& r, uint64_t key) {
  for (const auto& e : r.entries) {
    if (e.key == key) return &e;
  }
  return nullptr;
}

TEST(ReduceTest, FalseRootBecomesScalar) {
  ReductionFixture f;
  VarId root = f.system.NewVar();
  f.system.SetEquation(root, {{}});
  f.system.Propagate([](VarId) {});
  f.keys = {100};
  auto red = f.Reduce({root});
  ASSERT_EQ(red.entries.size(), 1u);
  EXPECT_EQ(red.entries[0].kind, ReducedEntry::kFalse);
  EXPECT_EQ(red.entries[0].key, 100u);
}

TEST(ReduceTest, DefinitelyTrueRootBecomesScalar) {
  // root = sink (no equation, not frontier): survives pessimistic analysis.
  ReductionFixture f;
  VarId root = f.system.NewVar();
  f.keys = {100};
  auto red = f.Reduce({root});
  ASSERT_EQ(red.entries.size(), 1u);
  EXPECT_EQ(red.entries[0].kind, ReducedEntry::kTrue);
}

TEST(ReduceTest, ChainCollapsesToFrontierRef) {
  // root = a, a = b, b = ext. Expect: root's entry references ext directly.
  ReductionFixture f;
  VarId ext = f.system.NewVar();
  VarId b = f.system.NewVar(), a = f.system.NewVar(), root = f.system.NewVar();
  f.system.SetEquation(b, {{ext}});
  f.system.SetEquation(a, {{b}});
  f.system.SetEquation(root, {{a}});
  f.frontier = {ext};
  f.keys = {10, 11, 12, 13};
  auto red = f.Reduce({root});
  ASSERT_EQ(red.entries.size(), 1u);
  const ReducedEntry& e = red.entries[0];
  EXPECT_EQ(e.key, 13u);
  EXPECT_EQ(e.kind, ReducedEntry::kEquation);
  ASSERT_EQ(e.groups.size(), 1u);
  EXPECT_EQ(e.groups[0], (std::vector<uint64_t>{10}));
}

TEST(ReduceTest, DefTrueMemberSatisfiesGroup) {
  // root = (sink | ext) & (ext): first group is satisfied by the sink, so
  // only the second survives.
  ReductionFixture f;
  VarId sink = f.system.NewVar();
  VarId ext = f.system.NewVar();
  VarId root = f.system.NewVar();
  f.system.SetEquation(root, {{sink, ext}, {ext}});
  f.frontier = {ext};
  f.keys = {20, 21, 22};
  auto red = f.Reduce({root});
  ASSERT_EQ(red.entries.size(), 1u);
  ASSERT_EQ(red.entries[0].groups.size(), 1u);
  EXPECT_EQ(red.entries[0].groups[0], (std::vector<uint64_t>{21}));
}

TEST(ReduceTest, FalseMembersDropped) {
  ReductionFixture f;
  VarId dead = f.system.NewVar();
  f.system.SetEquation(dead, {{}});
  f.system.Propagate([](VarId) {});
  VarId ext = f.system.NewVar();
  VarId root = f.system.NewVar();
  f.system.SetEquation(root, {{dead, ext}});
  f.frontier = {ext};
  f.keys = {30, 31, 32};
  auto red = f.Reduce({root});
  ASSERT_EQ(red.entries.size(), 1u);
  EXPECT_EQ(red.entries[0].groups[0], (std::vector<uint64_t>{31}));
}

TEST(ReduceTest, SelfSupportingCycleFoldsToTrue) {
  // root = a, a = b | ext, b = a: the a/b cycle self-supports under the
  // greatest fixpoint regardless of ext, so the root is definitely true.
  ReductionFixture f;
  VarId ext = f.system.NewVar();
  VarId a = f.system.NewVar(), b = f.system.NewVar(), root = f.system.NewVar();
  f.system.SetEquation(a, {{b, ext}});
  f.system.SetEquation(b, {{a}});
  f.system.SetEquation(root, {{a}});
  f.frontier = {ext};
  f.keys = {40, 41, 42, 43};
  auto red = f.Reduce({root});
  ASSERT_EQ(red.entries.size(), 1u);
  EXPECT_EQ(red.entries[0].key, 43u);
  EXPECT_EQ(red.entries[0].kind, ReducedEntry::kTrue);
}

TEST(ReduceTest, FrontierBreakableCyclePreservedAsEntries) {
  // root = a, a = b AND ext, b = a: the frontier can break this cycle, so
  // it must ship as entries whose greatest fixpoint the consumer computes.
  ReductionFixture f;
  VarId ext = f.system.NewVar();
  VarId a = f.system.NewVar(), b = f.system.NewVar(), root = f.system.NewVar();
  f.system.SetEquation(a, {{b}, {ext}});
  f.system.SetEquation(b, {{a}});
  f.system.SetEquation(root, {{a}});
  f.frontier = {ext};
  f.keys = {40, 41, 42, 43};
  auto red = f.Reduce({root});
  // Entries exist for the cycle members reachable from the root.
  EXPECT_NE(FindEntry(red, 41), nullptr);
  EXPECT_NE(FindEntry(red, 43), nullptr);
  EXPECT_GE(red.entries.size(), 2u);
  // And the group structure of `a` survives: {b-ish ref} and {ext}.
  const ReducedEntry* ea = FindEntry(red, 41);
  ASSERT_NE(ea, nullptr);
  EXPECT_EQ(ea->groups.size(), 2u);
}

TEST(ReduceTest, BranchingStructurePreserved) {
  // root = (e1 | e2) & (e3): groups survive as-is over frontier keys.
  ReductionFixture f;
  VarId e1 = f.system.NewVar(), e2 = f.system.NewVar(), e3 = f.system.NewVar();
  VarId root = f.system.NewVar();
  f.system.SetEquation(root, {{e1, e2}, {e3}});
  f.frontier = {e1, e2, e3};
  f.keys = {50, 51, 52, 53};
  auto red = f.Reduce({root});
  ASSERT_EQ(red.entries.size(), 1u);
  const auto& e = red.entries[0];
  ASSERT_EQ(e.groups.size(), 2u);
  EXPECT_EQ(e.groups[0], (std::vector<uint64_t>{50, 51}));
  EXPECT_EQ(e.groups[1], (std::vector<uint64_t>{52}));
}

TEST(ReduceTest, SerializationRoundTrip) {
  ReducedSystem r;
  ReducedEntry eq;
  eq.key = 77;
  eq.kind = ReducedEntry::kEquation;
  eq.groups = {{1, 2, 3}, {4}};
  r.entries.push_back(eq);
  ReducedEntry scalar;
  scalar.key = 88;
  scalar.kind = ReducedEntry::kFalse;
  r.entries.push_back(scalar);

  Blob blob;
  r.Serialize(blob);
  Blob::Reader reader(blob);
  ReducedSystem back;
  ASSERT_TRUE(ReducedSystem::Deserialize(reader, &back));
  ASSERT_EQ(back.entries.size(), 2u);
  EXPECT_EQ(back.entries[0].key, 77u);
  EXPECT_EQ(back.entries[0].groups, eq.groups);
  EXPECT_EQ(back.entries[1].kind, ReducedEntry::kFalse);
  EXPECT_TRUE(reader.AtEnd());
  EXPECT_EQ(r.TotalUnits(), 2u + 4u);
}

TEST(ReduceTest, LongChainIsIterativeSafe) {
  // 100k-long chain from root to frontier: must not blow the stack and must
  // collapse to a single entry.
  ReductionFixture f;
  VarId ext = f.system.NewVar();
  f.keys.push_back(0);
  VarId prev = ext;
  const size_t kLen = 100000;
  for (size_t i = 1; i <= kLen; ++i) {
    VarId x = f.system.NewVar();
    f.system.SetEquation(x, {{prev}});
    f.keys.push_back(i);
    prev = x;
  }
  f.frontier = {ext};
  auto red = f.Reduce({prev});
  ASSERT_EQ(red.entries.size(), 1u);
  EXPECT_EQ(red.entries[0].groups[0], (std::vector<uint64_t>{0}));
}

}  // namespace
}  // namespace dgs
