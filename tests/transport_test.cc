// Transport conformance suite (runtime/transport.h, runtime/remote.h).
//
// The tentpole invariant: the round-execution backend is observationally
// invisible. A healthy run over the multi-process TCP backend must produce
// results, charged RunStats, and algorithm counters bit-identical to the
// in-process loopback reference, for every process grouping and executor
// width — only DistOutcome::transport (the measured socket accounting)
// knows the difference. On top of that, the physical frame protocol's
// recovery machinery (checksum/NACK/retransmit/dedup) must heal the
// deterministic wire-chaos knobs invisibly, and unrecoverable failures
// (a worker crash, a stalled peer) must classify Unavailable /
// DeadlineExceeded instead of aborting.
//
// Suite names deliberately avoid the sanitizer CI filters (no "Cluster",
// "Chaos", "Fault", "Engine", ... substrings): forking under TSAN/ASAN is
// not supported, and these suites fork freely.

#include "runtime/transport.h"

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/api.h"
#include "core/engine.h"
#include "graph/generators.h"
#include "partition/partitioner.h"
#include "runtime/cluster.h"
#include "runtime/remote.h"
#include "serve/server.h"
#include "test_env.h"
#include "util/check.h"

namespace dgs {
namespace {

// ---------------------------------------------------------------------------
// Spec parsing
// ---------------------------------------------------------------------------

TEST(TransportSpecTest, ParsesLoopbackAndTcp) {
  auto loop = ParseTransportSpec("loopback");
  ASSERT_TRUE(loop.ok());
  EXPECT_EQ(loop->kind, TransportKind::kLoopback);

  auto empty = ParseTransportSpec("");
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(empty->kind, TransportKind::kLoopback);

  auto tcp = ParseTransportSpec("tcp");
  ASSERT_TRUE(tcp.ok());
  EXPECT_EQ(tcp->kind, TransportKind::kTcp);
  EXPECT_EQ(tcp->num_processes, 0u);

  auto procs = ParseTransportSpec("tcp:4");
  ASSERT_TRUE(procs.ok());
  EXPECT_EQ(procs->kind, TransportKind::kTcp);
  EXPECT_EQ(procs->num_processes, 4u);
}

TEST(TransportSpecTest, RejectsMalformedSpecs) {
  for (const char* bad : {"udp", "tcp:", "tcp:x", "tcp:-2", "tcp:4x", "TCP"}) {
    auto parsed = ParseTransportSpec(bad);
    EXPECT_FALSE(parsed.ok()) << bad;
    EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument) << bad;
  }
}

// Error messages name the offending token and its 1-based position so a
// bad DGS_TRANSPORT value is diagnosable from the message alone.
TEST(TransportSpecTest, MalformedSpecMessagesNameTokenAndPosition) {
  auto backend = ParseTransportSpec("udp:3");
  ASSERT_FALSE(backend.ok());
  EXPECT_NE(backend.status().message().find("unknown backend 'udp'"),
            std::string::npos)
      << backend.status().ToString();
  EXPECT_NE(backend.status().message().find("at position 1"),
            std::string::npos)
      << backend.status().ToString();

  auto count = ParseTransportSpec("tcp:4x");
  ASSERT_FALSE(count.ok());
  EXPECT_NE(count.status().message().find("bad process count '4x'"),
            std::string::npos)
      << count.status().ToString();
  EXPECT_NE(count.status().message().find("at position 5"),
            std::string::npos)
      << count.status().ToString();
}

TEST(TransportSpecTest, SpecStringRoundTrips) {
  for (const char* spec : {"loopback", "tcp", "tcp:4"}) {
    auto parsed = ParseTransportSpec(spec);
    ASSERT_TRUE(parsed.ok()) << spec;
    EXPECT_EQ(TransportSpecString(*parsed), spec);
  }
}

// ---------------------------------------------------------------------------
// FrameChannel: the physical frame protocol over a socketpair
// ---------------------------------------------------------------------------

struct ChannelPair {
  int a_fd = -1, b_fd = -1;
  TransportStats a_stats, b_stats;

  ChannelPair() {
    int fds[2];
    EXPECT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    a_fd = fds[0];
    b_fd = fds[1];
  }
  ~ChannelPair() {
    if (a_fd >= 0) close(a_fd);
    if (b_fd >= 0) close(b_fd);
  }
};

Blob MakePayload(std::initializer_list<uint8_t> bytes) {
  Blob b;
  for (uint8_t x : bytes) b.PutU8(x);
  return b;
}

bool SamePayload(const Blob& a, const Blob& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size()) == 0;
}

TEST(TransportFramingTest, CleanRoundTripDeliversInOrder) {
  ChannelPair pair;
  TransportOptions options;
  FrameChannel a(pair.a_fd, options, &pair.a_stats);
  FrameChannel b(pair.b_fd, options, &pair.b_stats);

  const Blob p0 = MakePayload({1, 2, 3});
  const Blob p1 = MakePayload({4, 5});
  ASSERT_TRUE(a.SendData(p0).ok());
  ASSERT_TRUE(a.SendData(p1).ok());

  Blob got;
  bool shutdown = false;
  ASSERT_TRUE(b.ReceiveData(&got, &shutdown).ok());
  EXPECT_FALSE(shutdown);
  EXPECT_TRUE(SamePayload(got, p0));
  ASSERT_TRUE(b.ReceiveData(&got, &shutdown).ok());
  EXPECT_TRUE(SamePayload(got, p1));

  ASSERT_TRUE(a.SendShutdown().ok());
  ASSERT_TRUE(b.ReceiveData(&got, &shutdown).ok());
  EXPECT_TRUE(shutdown);

  EXPECT_EQ(pair.a_stats.frames_sent, 3u);
  EXPECT_EQ(pair.b_stats.frames_received, 3u);
  EXPECT_EQ(pair.b_stats.checksum_rejects, 0u);
  EXPECT_EQ(pair.a_stats.bytes_sent, pair.b_stats.bytes_received);
}

TEST(TransportFramingTest, CorruptFrameIsNackedAndRetransmitted) {
  ChannelPair pair;
  TransportOptions sender_options;
  sender_options.chaos_corrupt_every = 1;  // every data frame A sends
  TransportOptions receiver_options;
  FrameChannel a(pair.a_fd, sender_options, &pair.a_stats);
  FrameChannel b(pair.b_fd, receiver_options, &pair.b_stats);

  const Blob request = MakePayload({42, 43, 44});
  const Blob reply = MakePayload({7});

  // Peer: receive the (corrupted, then retransmitted) request, answer.
  std::thread peer([&] {
    Blob got;
    bool shutdown = false;
    ASSERT_TRUE(b.ReceiveData(&got, &shutdown).ok());
    EXPECT_TRUE(SamePayload(got, request));
    ASSERT_TRUE(b.SendData(reply).ok());
  });

  ASSERT_TRUE(a.SendData(request).ok());  // wire copy corrupted
  Blob got;
  bool shutdown = false;
  // Services the peer's NACK (clean retransmission), then reads the reply.
  ASSERT_TRUE(a.ReceiveData(&got, &shutdown).ok());
  peer.join();
  EXPECT_TRUE(SamePayload(got, reply));
  EXPECT_EQ(pair.b_stats.checksum_rejects, 1u);
  EXPECT_EQ(pair.a_stats.retransmits, 1u);
}

TEST(TransportFramingTest, DuplicateFramesAreDiscarded) {
  ChannelPair pair;
  TransportOptions sender_options;
  sender_options.chaos_duplicate_every = 1;  // every data frame sent twice
  TransportOptions receiver_options;
  FrameChannel a(pair.a_fd, sender_options, &pair.a_stats);
  FrameChannel b(pair.b_fd, receiver_options, &pair.b_stats);

  const Blob p0 = MakePayload({1});
  const Blob p1 = MakePayload({2});
  ASSERT_TRUE(a.SendData(p0).ok());
  ASSERT_TRUE(a.SendData(p1).ok());

  Blob got;
  bool shutdown = false;
  ASSERT_TRUE(b.ReceiveData(&got, &shutdown).ok());
  EXPECT_TRUE(SamePayload(got, p0));
  // The duplicate of p0 sits between them and must be skipped.
  ASSERT_TRUE(b.ReceiveData(&got, &shutdown).ok());
  EXPECT_TRUE(SamePayload(got, p1));
  EXPECT_EQ(pair.b_stats.duplicates_discarded, 1u);
  EXPECT_EQ(pair.b_stats.checksum_rejects, 0u);
}

TEST(TransportFramingTest, PeerSilenceClassifiesDeadlineExceeded) {
  ChannelPair pair;
  TransportOptions options;
  options.io_timeout_seconds = 0.2;
  FrameChannel b(pair.b_fd, options, &pair.b_stats);

  Blob got;
  bool shutdown = false;
  const Status s = b.ReceiveData(&got, &shutdown);
  EXPECT_EQ(s.code(), StatusCode::kDeadlineExceeded);
}

TEST(TransportFramingTest, PeerCloseClassifiesUnavailable) {
  ChannelPair pair;
  TransportOptions options;
  FrameChannel b(pair.b_fd, options, &pair.b_stats);
  close(pair.a_fd);
  pair.a_fd = -1;

  Blob got;
  bool shutdown = false;
  const Status s = b.ReceiveData(&got, &shutdown);
  EXPECT_EQ(s.code(), StatusCode::kUnavailable);
}

// Raw frame crafting for the protocol-desync cases (mirrors the layout in
// runtime/remote.cc: u32 magic | u8 kind | u64 seq | u32 len | payload |
// u32 FNV-1a over (kind, seq, len, payload)).
std::vector<uint8_t> CraftFrame(uint8_t kind, uint64_t seq,
                                const std::vector<uint8_t>& payload,
                                bool good_checksum, uint32_t magic) {
  const uint32_t len = static_cast<uint32_t>(payload.size());
  std::vector<uint8_t> buf(17 + len + 4);
  std::memcpy(buf.data(), &magic, 4);
  buf[4] = kind;
  std::memcpy(buf.data() + 5, &seq, 8);
  std::memcpy(buf.data() + 13, &len, 4);
  if (len > 0) std::memcpy(buf.data() + 17, payload.data(), len);
  uint32_t h = 2166136261u;
  for (size_t i = 4; i < 17 + len; ++i) {
    h ^= buf[i];
    h *= 16777619u;
  }
  if (!good_checksum) h ^= 0xffffffffu;
  std::memcpy(buf.data() + 17 + len, &h, 4);
  return buf;
}

void WriteRaw(int fd, const std::vector<uint8_t>& bytes) {
  size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t w = send(fd, bytes.data() + off, bytes.size() - off,
                           MSG_NOSIGNAL);
    ASSERT_GT(w, 0);
    off += static_cast<size_t>(w);
  }
}

TEST(TransportFramingTest, BadMagicClassifiesDataLoss) {
  ChannelPair pair;
  TransportOptions options;
  FrameChannel b(pair.b_fd, options, &pair.b_stats);
  WriteRaw(pair.a_fd, CraftFrame(0, 0, {1, 2, 3}, true, 0xdeadbeefu));

  Blob got;
  bool shutdown = false;
  const Status s = b.ReceiveData(&got, &shutdown);
  EXPECT_EQ(s.code(), StatusCode::kDataLoss);
}

TEST(TransportFramingTest, SequenceGapClassifiesDataLoss) {
  ChannelPair pair;
  TransportOptions options;
  FrameChannel b(pair.b_fd, options, &pair.b_stats);
  WriteRaw(pair.a_fd, CraftFrame(0, /*seq=*/5, {1}, true, 0x44475357u));

  Blob got;
  bool shutdown = false;
  const Status s = b.ReceiveData(&got, &shutdown);
  EXPECT_EQ(s.code(), StatusCode::kDataLoss);
}

TEST(TransportFramingTest, RetransmitBudgetExhaustionClassifiesDataLoss) {
  ChannelPair pair;
  TransportOptions options;
  options.max_frame_retransmits = 2;
  FrameChannel b(pair.b_fd, options, &pair.b_stats);
  // A peer that "retransmits" the same broken frame forever: after
  // max_frame_retransmits NACKs the receiver gives up.
  const auto bad = CraftFrame(0, 0, {9, 9}, false, 0x44475357u);
  for (int i = 0; i < 3; ++i) WriteRaw(pair.a_fd, bad);

  Blob got;
  bool shutdown = false;
  const Status s = b.ReceiveData(&got, &shutdown);
  EXPECT_EQ(s.code(), StatusCode::kDataLoss);
  EXPECT_EQ(pair.b_stats.checksum_rejects, 3u);
}

// ---------------------------------------------------------------------------
// Backend conformance: tcp == loopback, bit for bit
// ---------------------------------------------------------------------------

// Everything that must be backend-invariant: the answer plus the charged
// deterministic accounting, including every algorithm counter (the last
// three arrive from worker processes via the AlgoCountersChannel delta
// protocol, so this also pins the cross-process counter path).
void ExpectSameOutcome(const DistOutcome& got, const DistOutcome& want,
                       const std::string& what) {
  EXPECT_TRUE(got.result == want.result) << what;
  EXPECT_EQ(got.stats.data_bytes, want.stats.data_bytes) << what;
  EXPECT_EQ(got.stats.control_bytes, want.stats.control_bytes) << what;
  EXPECT_EQ(got.stats.result_bytes, want.stats.result_bytes) << what;
  EXPECT_EQ(got.stats.data_messages, want.stats.data_messages) << what;
  EXPECT_EQ(got.stats.control_messages, want.stats.control_messages) << what;
  EXPECT_EQ(got.stats.result_messages, want.stats.result_messages) << what;
  EXPECT_EQ(got.stats.rounds, want.stats.rounds) << what;
  EXPECT_EQ(got.counters.vars_shipped.load(),
            want.counters.vars_shipped.load())
      << what;
  EXPECT_EQ(got.counters.push_count.load(), want.counters.push_count.load())
      << what;
  EXPECT_EQ(got.counters.equation_units.load(),
            want.counters.equation_units.load())
      << what;
  EXPECT_EQ(got.counters.recomputations.load(),
            want.counters.recomputations.load())
      << what;
  EXPECT_EQ(got.counters.supersteps.load(), want.counters.supersteps.load())
      << what;
  EXPECT_EQ(got.counters.wire_saved_data_bytes.load(),
            want.counters.wire_saved_data_bytes.load())
      << what;
  EXPECT_EQ(got.counters.wire_saved_control_bytes.load(),
            want.counters.wire_saved_control_bytes.load())
      << what;
  EXPECT_EQ(got.counters.wire_saved_result_bytes.load(),
            want.counters.wire_saved_result_bytes.load())
      << what;
  EXPECT_EQ(got.decode_drops.Total(), 0u) << what;
  EXPECT_TRUE(got.health.ok()) << what;
}

struct Family {
  const char* name;
  Algorithm algorithm;
  Graph g;
  std::vector<uint32_t> assignment;
  uint32_t sites;
  Pattern q;
};

std::vector<Family> MakeFamilies() {
  std::vector<Family> families;
  auto add = [&families](const char* name, Algorithm algorithm, Graph g,
                         uint32_t sites, PatternKind kind, uint64_t seed) {
    Rng rng(seed);
    std::vector<uint32_t> assignment =
        PartitionWithBoundaryRatio(g, sites, 0.3, rng);
    PatternSpec spec;
    spec.num_nodes = 4;
    spec.num_edges = kind == PatternKind::kCyclic ? 6 : 5;
    spec.kind = kind;
    auto q = ExtractPattern(g, spec, rng);
    DGS_CHECK(q.ok(), "pattern extraction failed");
    families.push_back({name, algorithm, std::move(g), std::move(assignment),
                        sites, std::move(*q)});
  };
  {
    Rng rng(2014);
    Graph web = WebGraph(800, 3200, kDefaultAlphabet, rng);
    add("dGPM", Algorithm::kDgpm, web, 4, PatternKind::kCyclic, 11);
    add("dGPMNOpt", Algorithm::kDgpmNoOpt, web, 4, PatternKind::kCyclic, 12);
    add("dMes", Algorithm::kDMes, web, 4, PatternKind::kCyclic, 13);
    add("Match", Algorithm::kMatch, web, 4, PatternKind::kCyclic, 14);
    add("disHHK", Algorithm::kDisHhk, std::move(web), 4, PatternKind::kCyclic,
        15);
  }
  {
    Rng rng(99);
    Graph dag = CitationDag(800, 3000, kDefaultAlphabet, rng);
    add("dGPMd", Algorithm::kDgpmDag, std::move(dag), 4, PatternKind::kDag,
        16);
  }
  {
    Rng rng(5);
    Graph tree = RandomTree(600, kDefaultAlphabet, rng);
    add("dGPMt", Algorithm::kDgpmTree, std::move(tree), 4, PatternKind::kDag,
        17);
  }
  return families;
}

TEST(TransportConformanceTest, TcpMatchesLoopbackAcrossFamiliesAndGroupings) {
  for (Family& family : MakeFamilies()) {
    DistOptions options;
    options.algorithm = family.algorithm;
    options.num_threads = 1;
    auto clean = DistributedMatch(family.g, family.assignment, family.sites,
                                  family.q, options);
    ASSERT_TRUE(clean.ok()) << family.name;
    EXPECT_EQ(clean->transport.processes, 0u)
        << family.name << ": loopback measures no wire";
    EXPECT_EQ(clean->transport.bytes_sent, 0u) << family.name;

    options.transport.kind = TransportKind::kTcp;
    // One child for all sites, a split, and one child per site.
    for (uint32_t procs : {1u, 2u, 0u}) {
      for (uint32_t threads : {1u, 2u}) {
        options.transport.num_processes = procs;
        options.num_threads = threads;
        auto remote = DistributedMatch(family.g, family.assignment,
                                       family.sites, family.q, options);
        const std::string what = std::string(family.name) + " tcp:" +
                                 std::to_string(procs) + " t" +
                                 std::to_string(threads);
        ASSERT_TRUE(remote.ok())
            << what << ": " << remote.status().ToString();
        ExpectSameOutcome(*remote, *clean, what);
        // The measured twin really measured a wire.
        const uint64_t expect_procs =
            procs == 0 ? family.sites : std::min(procs, family.sites);
        EXPECT_EQ(remote->transport.processes, expect_procs) << what;
        EXPECT_GT(remote->transport.frames_sent, 0u) << what;
        EXPECT_GT(remote->transport.frames_received, 0u) << what;
        EXPECT_GT(remote->transport.bytes_sent, 0u) << what;
        EXPECT_GT(remote->transport.bytes_received, 0u) << what;
        EXPECT_EQ(remote->transport.checksum_rejects, 0u) << what;
        EXPECT_EQ(remote->transport.retransmits, 0u) << what;
        EXPECT_EQ(remote->transport.duplicates_discarded, 0u) << what;
      }
    }
  }
}

// The PR 6 logical fault injector runs on the cluster's merge path in the
// parent, so a recovered drop/dup/reorder plan must stay observationally
// invisible over tcp exactly as it is over loopback.
TEST(TransportConformanceTest, RecoveredInjectorPlanIsInvisibleOverTcp) {
  Family family = std::move(MakeFamilies()[0]);  // dGPM
  DistOptions options;
  options.algorithm = family.algorithm;
  auto clean = DistributedMatch(family.g, family.assignment, family.sites,
                                family.q, options);
  ASSERT_TRUE(clean.ok());

  options.faults.data.drop = 0.3;
  options.faults.data.duplicate = 0.2;
  options.faults.data.reorder = 0.3;
  options.faults.control = options.faults.data;
  options.faults.result = options.faults.data;
  options.faults.max_retries = 16;
  options.faults.seed = 7;
  options.transport.kind = TransportKind::kTcp;
  options.transport.num_processes = 2;
  auto chaos = DistributedMatch(family.g, family.assignment, family.sites,
                                family.q, options);
  ASSERT_TRUE(chaos.ok()) << chaos.status().ToString();
  ExpectSameOutcome(*chaos, *clean, "injector-over-tcp");
  EXPECT_GT(chaos->faults.Injected(), 0u);
  EXPECT_EQ(chaos->faults.lost, 0u);
}

// A resident Engine keeps a PERSISTENT, supervised worker fleet
// (runtime/supervisor.h): the first query forks the site-group processes,
// every further query re-ships only its binding blob over the open
// channels — zero forks — and outcomes stay bit-identical to loopback.
TEST(TransportConformanceTest, ResidentServingReusesPersistentWorkers) {
  Family family = std::move(MakeFamilies()[0]);  // dGPM
  QueryOptions query;
  query.algorithm = family.algorithm;

  EngineOptions loop_options;
  auto reference = Engine::Create(family.g, family.assignment, family.sites,
                                  loop_options);
  ASSERT_TRUE(reference.ok());
  auto want = (*reference)->Match(family.q, query);
  ASSERT_TRUE(want.ok());

  EngineOptions options;
  options.transport.kind = TransportKind::kTcp;
  options.transport.num_processes = 2;
  auto engine = Engine::Create(family.g, family.assignment, family.sites,
                               options);
  ASSERT_TRUE(engine.ok());
  for (int i = 0; i < 3; ++i) {
    auto got = (*engine)->Match(family.q, query);
    ASSERT_TRUE(got.ok()) << "query " << i << ": "
                          << got.status().ToString();
    ExpectSameOutcome(*got, *want, "resident query " + std::to_string(i));
    // Only the first query pays the fork; steady state reuses the fleet.
    EXPECT_EQ(got->transport.processes, i == 0 ? 2u : 0u) << "query " << i;
    EXPECT_EQ(got->transport.respawns, 0u) << "query " << i;
    EXPECT_GT(got->transport.bytes_sent, 0u) << "query " << i;
  }
  EXPECT_EQ((*engine)->serving_stats().transport.processes, 2u);
  EXPECT_EQ((*engine)->serving_stats().transport.respawns, 0u);
  EXPECT_GT((*engine)->serving_stats().transport.bytes_sent, 0u);
}

// With supervision off, every query re-forks its workers (the pre-pool
// lifecycle) and no heartbeat traffic ever hits the wire: supervision is
// pay-for-what-you-use.
TEST(TransportConformanceTest, ResidentServingReforksWhenSupervisionOff) {
  Family family = std::move(MakeFamilies()[0]);  // dGPM
  QueryOptions query;
  query.algorithm = family.algorithm;

  EngineOptions options;
  options.transport.kind = TransportKind::kTcp;
  options.transport.num_processes = 2;
  options.transport.persistent_workers = false;
  auto engine = Engine::Create(family.g, family.assignment, family.sites,
                               options);
  ASSERT_TRUE(engine.ok());
  for (int i = 0; i < 3; ++i) {
    auto got = (*engine)->Match(family.q, query);
    ASSERT_TRUE(got.ok()) << "query " << i << ": "
                          << got.status().ToString();
    EXPECT_EQ(got->transport.processes, 2u) << "query " << i;
  }
  const TransportStats& total = (*engine)->serving_stats().transport;
  EXPECT_EQ(total.processes, 6u);
  EXPECT_EQ(total.respawns, 0u);
  EXPECT_EQ(total.heartbeats_sent, 0u);
  EXPECT_EQ(total.heartbeats_missed, 0u);
}

// ---------------------------------------------------------------------------
// Wire-chaos recovery and classified failures on the real socket path
// ---------------------------------------------------------------------------

TEST(TransportRecoveryTest, WireChaosHealsBitIdentical) {
  Family family = std::move(MakeFamilies()[0]);  // dGPM
  DistOptions options;
  options.algorithm = family.algorithm;
  auto clean = DistributedMatch(family.g, family.assignment, family.sites,
                                family.q, options);
  ASSERT_TRUE(clean.ok());

  options.transport.kind = TransportKind::kTcp;
  options.transport.num_processes = 2;
  options.transport.chaos_corrupt_every = 2;
  options.transport.chaos_duplicate_every = 3;
  auto chaos = DistributedMatch(family.g, family.assignment, family.sites,
                                family.q, options);
  ASSERT_TRUE(chaos.ok()) << chaos.status().ToString();
  ExpectSameOutcome(*chaos, *clean, "wire-chaos");
  // The chaos really hit the wire and the frame protocol really healed it.
  EXPECT_GT(chaos->transport.checksum_rejects, 0u);
  EXPECT_GT(chaos->transport.retransmits, 0u);
  EXPECT_GT(chaos->transport.duplicates_discarded, 0u);

  // The wire-chaos schedule is deterministic: a second run reproduces the
  // measured recovery byte for byte.
  auto again = DistributedMatch(family.g, family.assignment, family.sites,
                                family.q, options);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->transport.checksum_rejects,
            chaos->transport.checksum_rejects);
  EXPECT_EQ(again->transport.retransmits, chaos->transport.retransmits);
  EXPECT_EQ(again->transport.duplicates_discarded,
            chaos->transport.duplicates_discarded);
  EXPECT_EQ(again->transport.bytes_sent, chaos->transport.bytes_sent);
}

TEST(TransportOutageTest, WorkerExitClassifiesUnavailable) {
  Family family = std::move(MakeFamilies()[0]);  // dGPM
  DistOptions options;
  options.algorithm = family.algorithm;
  options.transport.kind = TransportKind::kTcp;
  options.transport.num_processes = 2;
  options.transport.chaos_exit_at_round = 1;
  auto outcome = DistributedMatch(family.g, family.assignment, family.sites,
                                  family.q, options);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kUnavailable);
}

TEST(TransportOutageTest, WorkerStallClassifiesDeadlineExceeded) {
  Family family = std::move(MakeFamilies()[0]);  // dGPM
  DistOptions options;
  options.algorithm = family.algorithm;
  options.transport.kind = TransportKind::kTcp;
  options.transport.num_processes = 2;
  options.transport.chaos_stall_at_round = 1;
  options.transport.io_timeout_seconds = 0.3;
  auto outcome = DistributedMatch(family.g, family.assignment, family.sites,
                                  family.q, options);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kDeadlineExceeded);
}

// A worker crash poisons the query, never the deployment: the supervised
// pool marks the dead slot, respawns it (copy-on-write fragment re-ship +
// RunBinding blob) before the next run, and the healed query is
// bit-identical to a fault-free loopback run. chaos_kill_generation
// defaults to 0, so only the original generation-0 fleet carries the
// chaos trigger — the respawned fleet runs clean.
TEST(TransportOutageTest, ResidentServingSurvivesWorkerCrashes) {
  Family family = std::move(MakeFamilies()[0]);  // dGPM
  QueryOptions query;
  query.algorithm = family.algorithm;

  EngineOptions loop_options;
  auto reference = Engine::Create(family.g, family.assignment, family.sites,
                                  loop_options);
  ASSERT_TRUE(reference.ok());
  auto want = (*reference)->Match(family.q, query);
  ASSERT_TRUE(want.ok());

  EngineOptions options;
  options.transport.kind = TransportKind::kTcp;
  options.transport.num_processes = 2;
  options.transport.chaos_exit_at_round = 1;
  auto engine = Engine::Create(family.g, family.assignment, family.sites,
                               options);
  ASSERT_TRUE(engine.ok());

  auto first = (*engine)->Match(family.q, query);
  ASSERT_FALSE(first.ok());
  EXPECT_EQ(first.status().code(), StatusCode::kUnavailable);

  auto healed = (*engine)->Match(family.q, query);
  ASSERT_TRUE(healed.ok()) << healed.status().ToString();
  ExpectSameOutcome(*healed, *want, "healed query after crash");
  EXPECT_GE(healed->transport.respawns, 1u);

  EXPECT_EQ((*engine)->serving_stats().queries_failed, 1u);
  EXPECT_EQ((*engine)->serving_stats().queries_served, 1u);
  EXPECT_GE((*engine)->serving_stats().transport.respawns, 1u);
}

// With supervision off there is no pool to heal the fleet: every re-forked
// worker carries the chaos trigger again and every attempt fails the same
// way — the pre-pool behavior, preserved behind the flag.
TEST(TransportOutageTest, UnsupervisedWorkersKeepCrashing) {
  Family family = std::move(MakeFamilies()[0]);  // dGPM
  QueryOptions query;
  query.algorithm = family.algorithm;
  EngineOptions options;
  options.transport.kind = TransportKind::kTcp;
  options.transport.num_processes = 2;
  options.transport.persistent_workers = false;
  options.transport.chaos_exit_at_round = 1;
  auto engine = Engine::Create(family.g, family.assignment, family.sites,
                               options);
  ASSERT_TRUE(engine.ok());
  for (int i = 0; i < 2; ++i) {
    auto outcome = (*engine)->Match(family.q, query);
    ASSERT_FALSE(outcome.ok()) << "attempt " << i;
    EXPECT_EQ(outcome.status().code(), StatusCode::kUnavailable)
        << "attempt " << i;
  }
  EXPECT_EQ((*engine)->serving_stats().queries_failed, 2u);
}

// ---------------------------------------------------------------------------
// Coalesced batch framing (charged model)
// ---------------------------------------------------------------------------

// Site 0 sends three data messages to site 1 in one round; payload sizes
// 5, 7, 9. Per-message framing charges a full header each; coalesced
// framing charges one header plus two per-entry subheaders.
class FanSender : public SiteActor {
 public:
  void Setup(SiteContext& ctx) override {
    if (ctx.site_id() != 0) return;
    for (size_t bytes : {5u, 7u, 9u}) {
      Blob b;
      for (size_t i = 0; i < bytes; ++i) b.PutU8(static_cast<uint8_t>(i));
      ctx.Send(1, MessageClass::kData, std::move(b));
    }
  }
  void OnMessages(SiteContext&, std::vector<Message>) override {}
};

TEST(TransportCoalesceTest, ChargesOneHeaderPerFlushOnEveryBackend) {
  const uint64_t per_message =
      (kMessageHeaderBytes + 5) + (kMessageHeaderBytes + 7) +
      (kMessageHeaderBytes + 9);
  const uint64_t coalesced = (kMessageHeaderBytes + 5) +
                             (kCoalescedEntryBytes + 7) +
                             (kCoalescedEntryBytes + 9);
  ASSERT_LT(coalesced, per_message);

  uint64_t reference_rounds = 0;
  for (TransportKind kind : {TransportKind::kLoopback, TransportKind::kTcp}) {
    for (bool coalesce : {false, true}) {
      ClusterOptions options;
      options.transport.kind = kind;
      options.transport.coalesce = coalesce;
      Cluster cluster(2, options);
      cluster.SetWorker(0, std::make_unique<FanSender>());
      cluster.SetWorker(1, std::make_unique<FanSender>());
      cluster.SetCoordinator(std::make_unique<FanSender>());
      RunStats stats = cluster.Run();
      const std::string what = std::string(TransportKindName(kind)) +
                               (coalesce ? " coalesced" : " per-message");
      EXPECT_EQ(stats.data_bytes, coalesce ? coalesced : per_message) << what;
      EXPECT_EQ(stats.data_messages, 3u) << what;
      // Coalescing changes charged bytes only — never the round schedule.
      if (reference_rounds == 0) reference_rounds = stats.rounds;
      EXPECT_EQ(stats.rounds, reference_rounds) << what;
    }
  }
}

TEST(TransportCoalesceTest, CoalescingPreservesResultsAndSavesBytes) {
  for (Family& family : MakeFamilies()) {
    DistOptions options;
    options.algorithm = family.algorithm;
    auto plain = DistributedMatch(family.g, family.assignment, family.sites,
                                  family.q, options);
    ASSERT_TRUE(plain.ok()) << family.name;

    options.transport.coalesce = true;
    auto packed = DistributedMatch(family.g, family.assignment, family.sites,
                                   family.q, options);
    ASSERT_TRUE(packed.ok()) << family.name;
    EXPECT_TRUE(packed->result == plain->result) << family.name;
    EXPECT_EQ(packed->stats.data_messages, plain->stats.data_messages)
        << family.name;
    EXPECT_EQ(packed->stats.rounds, plain->stats.rounds) << family.name;
    // One header per flush never charges more than one per message.
    EXPECT_LE(packed->stats.data_bytes, plain->stats.data_bytes)
        << family.name;
    EXPECT_LE(packed->stats.control_bytes, plain->stats.control_bytes)
        << family.name;
    EXPECT_LE(packed->stats.result_bytes, plain->stats.result_bytes)
        << family.name;
  }
}

// ---------------------------------------------------------------------------
// Concurrent serving over tcp (dgs::Server replicas)
// ---------------------------------------------------------------------------

TEST(TransportReplicatedServing, ReplicasServeQueriesOverTcp) {
  Rng rng(2014);
  Graph g = WebGraph(400, 1600, kDefaultAlphabet, rng);
  std::vector<uint32_t> assignment =
      PartitionWithBoundaryRatio(g, 3, 0.3, rng);
  PatternSpec spec;
  spec.num_nodes = 4;
  spec.num_edges = 6;
  spec.kind = PatternKind::kCyclic;
  auto q = ExtractPattern(g, spec, rng);
  ASSERT_TRUE(q.ok());

  QueryOptions query;
  query.algorithm = Algorithm::kDgpm;
  auto reference = DistributedMatch(g, assignment, 3, *q, {});
  ASSERT_TRUE(reference.ok());

  ServerOptions options;
  options.num_replicas = 2;
  options.cache = CacheMode::kOff;  // every query really runs over the wire
  options.engine.transport.kind = TransportKind::kTcp;
  options.engine.transport.num_processes = 2;
  auto server = Server::Create(g, assignment, 3, options);
  ASSERT_TRUE(server.ok());

  std::vector<ServerTicket> tickets;
  for (int i = 0; i < 6; ++i) {
    tickets.push_back((*server)->Submit(*q, query));
  }
  // Each replica forks its persistent fleet once (first query it serves);
  // every later query it serves re-ships over the open channels.
  uint64_t total_forked = 0;
  for (size_t i = 0; i < tickets.size(); ++i) {
    auto outcome = tickets[i].Wait();
    ASSERT_TRUE(outcome.ok())
        << "query " << i << ": " << outcome.status().ToString();
    EXPECT_TRUE(outcome->result == reference->result) << "query " << i;
    EXPECT_EQ(outcome->stats.data_bytes, reference->stats.data_bytes)
        << "query " << i;
    EXPECT_TRUE(outcome->transport.processes == 0u ||
                outcome->transport.processes == 2u)
        << "query " << i << " forked " << outcome->transport.processes;
    total_forked += outcome->transport.processes;
  }
  // At most one fork per replica; at least one replica served something.
  EXPECT_GE(total_forked, 2u);
  EXPECT_LE(total_forked, 4u);
  (*server)->Shutdown();
}

}  // namespace
}  // namespace dgs
