// Validates the paper's data-shipment and message bounds on randomized
// inputs (Table 1, "this work" rows):
//   dGPM / dGPMd:  vars shipped <= |Ef| * |Vq|  (each crossing edge carries
//                  each query-node truth value at most once)
//   dGPMd:         data messages <= |F|^2 * (d + 1)
//   dGPMt (trees): kData bytes independent of |G| at fixed |F| (tested in
//                  dgpm_tree_test); here: two coordinator phases only.
//   Match:         ships the whole graph.

#include <gtest/gtest.h>

#include "core/api.h"
#include "graph/generators.h"
#include "partition/partitioner.h"

namespace dgs {
namespace {

struct BoundCase {
  uint64_t seed;
  size_t n, m;
  uint32_t sites;
  size_t nq, mq;
};

class ShipmentBounds : public ::testing::TestWithParam<BoundCase> {};

TEST_P(ShipmentBounds, DgpmVarsShippedWithinEfVq) {
  const BoundCase& c = GetParam();
  Rng rng(c.seed);
  for (int trial = 0; trial < 4; ++trial) {
    Graph g = RandomGraph(c.n, c.m, 4, rng);
    auto assignment = RandomPartition(g, c.sites, rng);
    auto frag = Fragmentation::Create(g, assignment, c.sites);
    ASSERT_TRUE(frag.ok());
    PatternSpec spec;
    spec.num_nodes = c.nq;
    spec.num_edges = c.mq;
    spec.kind = PatternKind::kCyclic;
    auto q = ExtractPattern(g, spec, rng);
    if (!q.ok()) continue;

    DgpmConfig config;
    config.enable_push = false;
    auto outcome = RunDgpm(*frag, *q, config);
    // Theorem 2: at most one truth value per (crossing edge, query node).
    EXPECT_LE(outcome.counters.vars_shipped,
              frag->NumCrossingEdges() * q->NumNodes())
        << "seed " << c.seed << " trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ShipmentBounds,
    ::testing::Values(BoundCase{401, 200, 800, 4, 4, 8},
                      BoundCase{402, 300, 900, 6, 5, 9},
                      BoundCase{403, 150, 750, 8, 3, 5},
                      BoundCase{404, 400, 1200, 5, 6, 10}));

TEST(MetricsBoundsTest, DgpmDagMessagesBounded) {
  Rng rng(411);
  Graph g = CitationDag(1500, 4000, 5, rng);
  const uint32_t sites = 5;
  auto frag =
      Fragmentation::Create(g, RandomPartition(g, sites, rng), sites);
  ASSERT_TRUE(frag.ok());
  PatternSpec spec;
  spec.num_nodes = 7;
  spec.num_edges = 10;
  spec.kind = PatternKind::kDag;
  spec.dag_depth = 4;
  auto q = ExtractPattern(g, spec, rng);
  ASSERT_TRUE(q.ok());
  auto outcome = RunDgpmDag(*frag, *q, g, DgpmDagConfig{});
  EXPECT_LE(outcome.counters.vars_shipped,
            frag->NumCrossingEdges() * q->NumNodes());
  EXPECT_LE(outcome.stats.data_messages,
            static_cast<uint64_t>(sites) * sites * (q->MaxRank() + 1));
}

TEST(MetricsBoundsTest, DgpmShipsOrdersOfMagnitudeLessThanMatch) {
  // The headline comparison (Fig. 6(b)): dGPM ships truth values, Match
  // ships the graph.
  Rng rng(421);
  Graph g = WebGraph(4000, 16000, 15, rng);
  auto assignment = PartitionWithBoundaryRatio(g, 8, 0.25, rng);
  auto frag = Fragmentation::Create(g, assignment, 8);
  ASSERT_TRUE(frag.ok());
  PatternSpec spec;
  spec.num_nodes = 5;
  spec.num_edges = 10;
  spec.kind = PatternKind::kCyclic;
  auto q = ExtractPattern(g, spec, rng);
  ASSERT_TRUE(q.ok());

  DgpmConfig config;
  config.enable_push = false;
  auto dgpm = RunDgpm(*frag, *q, config);
  auto match = RunMatch(*frag, *q, BaselineConfig{});
  ASSERT_TRUE(dgpm.result == match.result);
  EXPECT_LT(dgpm.stats.data_bytes * 10, match.stats.data_bytes);
}

TEST(MetricsBoundsTest, DgpmDataShipmentIndependentOfGraphSize) {
  // Fig. 6(p)'s point: grow |G| at (approximately) fixed |Ef| and |Q|; the
  // dGPM shipment must track |Ef|, not |G|. We construct this directly:
  // two cliques of growing size connected by a fixed number of crossing
  // edges.
  auto build = [](size_t half) {
    GraphBuilder b;
    for (size_t i = 0; i < 2 * half; ++i) b.AddNode(i % 2);
    Rng rng(431);
    // Dense-ish intra-site edges.
    for (size_t i = 0; i < 8 * half; ++i) {
      NodeId u = static_cast<NodeId>(rng.UniformInt(half));
      NodeId v = static_cast<NodeId>(rng.UniformInt(half));
      if (u != v) b.AddEdge(u, v);
      u = static_cast<NodeId>(half + rng.UniformInt(half));
      v = static_cast<NodeId>(half + rng.UniformInt(half));
      if (u != v) b.AddEdge(u, v);
    }
    // Exactly 8 crossing edges each way.
    for (size_t i = 0; i < 8; ++i) {
      b.AddEdge(static_cast<NodeId>(i), static_cast<NodeId>(half + i));
      b.AddEdge(static_cast<NodeId>(half + i), static_cast<NodeId>(i));
    }
    return std::move(b).Build();
  };
  Pattern q(MakeGraph({0, 1}, {{0, 1}, {1, 0}}));
  auto measure = [&](size_t half) {
    Graph g = build(half);
    std::vector<uint32_t> assignment(g.NumNodes());
    for (NodeId v = 0; v < g.NumNodes(); ++v) assignment[v] = v < half ? 0 : 1;
    auto frag = Fragmentation::Create(g, assignment, 2);
    DGS_CHECK(frag.ok(), "frag");
    DgpmConfig config;
    config.enable_push = false;
    return RunDgpm(*frag, q, config).stats.data_bytes;
  };
  uint64_t small = measure(200);
  uint64_t big = measure(3200);  // 16x the graph
  // Crossing structure fixed => shipment must not scale with |G|. Allow a
  // 2x cushion for incidental variation.
  EXPECT_LE(big, 2 * small + 512);
}

TEST(MetricsBoundsTest, ControlAndResultTrafficTrackedSeparately) {
  auto ex = MakeSocialExample();
  DistOptions options;
  auto outcome = DistributedMatch(ex.g, ex.assignment, 3, ex.q, options);
  ASSERT_TRUE(outcome.ok());
  // Result collection always happens (three sites report matches).
  EXPECT_GT(outcome->stats.result_bytes, 0u);
  EXPECT_EQ(outcome->stats.result_messages, 3u);
  // data_shipment_bytes excludes result collection.
  EXPECT_EQ(outcome->data_shipment_bytes(), outcome->stats.data_bytes);
}

}  // namespace
}  // namespace dgs
