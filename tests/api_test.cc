#include "core/api.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "partition/partitioner.h"
#include "simulation/simulation.h"

namespace dgs {
namespace {

TEST(ApiTest, AlgorithmNames) {
  EXPECT_STREQ(AlgorithmName(Algorithm::kDgpm), "dGPM");
  EXPECT_STREQ(AlgorithmName(Algorithm::kDgpmNoOpt), "dGPMNOpt");
  EXPECT_STREQ(AlgorithmName(Algorithm::kDgpmDag), "dGPMd");
  EXPECT_STREQ(AlgorithmName(Algorithm::kDgpmTree), "dGPMt");
  EXPECT_STREQ(AlgorithmName(Algorithm::kMatch), "Match");
  EXPECT_STREQ(AlgorithmName(Algorithm::kDisHhk), "disHHK");
  EXPECT_STREQ(AlgorithmName(Algorithm::kDMes), "dMes");
}

TEST(ApiTest, ValidatesAssignment) {
  auto ex = MakeSocialExample();
  DistOptions options;
  EXPECT_FALSE(DistributedMatch(ex.g, {0, 1}, 2, ex.q, options).ok());
  std::vector<uint32_t> bad(13, 9);
  EXPECT_FALSE(DistributedMatch(ex.g, bad, 3, ex.q, options).ok());
}

TEST(ApiTest, ValidatesPattern) {
  auto ex = MakeSocialExample();
  Pattern empty;
  auto r = DistributedMatch(ex.g, ex.assignment, 3, empty, DistOptions{});
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(ApiTest, RejectsOversizedPatterns) {
  // Patterns with >= 2^16 nodes would overflow the 16-bit query-node field
  // of the wire key (MakeVarKey); the API refuses them up front.
  GraphBuilder qb(1u << 16);
  Pattern big(std::move(qb).Build());
  auto ex = MakeSocialExample();
  auto r = DistributedMatch(ex.g, ex.assignment, 3, big, DistOptions{});
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(ApiTest, DagRequiresDagSomewhere) {
  auto ex = MakeSocialExample();  // cyclic G
  DistOptions options;
  options.algorithm = Algorithm::kDgpmDag;
  // Cyclic Q + cyclic G: rejected.
  auto r = DistributedMatch(ex.g, ex.assignment, 3, ex.q, options);
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
  // DAG Q on cyclic G: fine.
  Pattern dag_q(MakeGraph({SocialExample::kYB, SocialExample::kYF}, {{0, 1}}));
  auto ok = DistributedMatch(ex.g, ex.assignment, 3, dag_q, options);
  EXPECT_TRUE(ok.ok());
}

TEST(ApiTest, TreeRequiresTree) {
  auto ex = MakeSocialExample();
  DistOptions options;
  options.algorithm = Algorithm::kDgpmTree;
  auto r = DistributedMatch(ex.g, ex.assignment, 3, ex.q, options);
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
}

TEST(ApiTest, AllAlgorithmsAgreeOnSocialExample) {
  auto ex = MakeSocialExample();
  auto expected = ComputeSimulation(ex.q, ex.g);
  for (Algorithm algorithm :
       {Algorithm::kDgpm, Algorithm::kDgpmNoOpt, Algorithm::kMatch,
        Algorithm::kDisHhk, Algorithm::kDMes}) {
    DistOptions options;
    options.algorithm = algorithm;
    auto outcome = DistributedMatch(ex.g, ex.assignment, 3, ex.q, options);
    ASSERT_TRUE(outcome.ok()) << AlgorithmName(algorithm);
    EXPECT_TRUE(outcome->result == expected) << AlgorithmName(algorithm);
  }
}

TEST(ApiTest, AutoDispatchesByStructure) {
  Rng rng(77);
  DistOptions options;
  options.algorithm = Algorithm::kAuto;

  // Tree data -> dGPMt path (two coordinator rounds, equation units > 0).
  Graph tree = RandomTree(200, 3, rng);
  auto tree_part = TreePartition(tree, 4);
  ASSERT_TRUE(tree_part.ok());
  Pattern chain(MakeGraph({0, 1}, {{0, 1}}));
  auto t = DistributedMatch(tree, *tree_part, 4, chain, options);
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(t->result == ComputeSimulation(chain, tree));
  EXPECT_GT(t->counters.equation_units, 0u);  // dGPMt fingerprint

  // Cyclic G with a DAG query -> dGPMd path.
  auto ex = MakeDagExample();
  auto d = DistributedMatch(ex.g, ex.assignment, 5, ex.q, options);
  ASSERT_TRUE(d.ok());
  EXPECT_FALSE(d->result.GraphMatches());

  // Cyclic G, cyclic Q -> dGPM path (kAuto never fails a precondition).
  auto social = MakeSocialExample();
  auto s = DistributedMatch(social.g, social.assignment, 3, social.q, options);
  ASSERT_TRUE(s.ok());
  EXPECT_TRUE(s->result == ComputeSimulation(social.q, social.g));
}

TEST(ApiTest, ReusableFragmentationOverload) {
  auto ex = MakeSocialExample();
  auto frag = Fragmentation::Create(ex.g, ex.assignment, 3);
  ASSERT_TRUE(frag.ok());
  DistOptions options;
  auto a = DistributedMatch(ex.g, *frag, ex.q, options);
  auto b = DistributedMatch(ex.g, ex.assignment, 3, ex.q, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(a->result == b->result);
}

TEST(ApiTest, MetricsArePopulated) {
  auto gadget = MakeLocalityGadget(5, /*broken=*/true);
  DistOptions options;
  options.enable_push = false;
  auto outcome = DistributedMatch(gadget.g, gadget.assignment, 5, gadget.q,
                                  options);
  ASSERT_TRUE(outcome.ok());
  EXPECT_GT(outcome->data_shipment_bytes(), 0u);
  EXPECT_GT(outcome->response_seconds(), 0.0);
  EXPECT_GT(outcome->stats.rounds, 0u);
  EXPECT_GT(outcome->counters.vars_shipped, 0u);
}

TEST(ApiTest, NetworkModelInflatesResponseTime) {
  auto gadget = MakeLocalityGadget(5, /*broken=*/true);
  DistOptions plain;
  plain.enable_push = false;
  DistOptions slow = plain;
  slow.network.latency_per_round_seconds = 0.01;
  auto fast = DistributedMatch(gadget.g, gadget.assignment, 5, gadget.q, plain);
  auto lagged =
      DistributedMatch(gadget.g, gadget.assignment, 5, gadget.q, slow);
  ASSERT_TRUE(fast.ok());
  ASSERT_TRUE(lagged.ok());
  EXPECT_GT(lagged->response_seconds(), fast->response_seconds());
  EXPECT_TRUE(fast->result == lagged->result);
}

}  // namespace
}  // namespace dgs
