#include "core/baselines.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "partition/partitioner.h"
#include "simulation/simulation.h"

namespace dgs {
namespace {

Fragmentation MustFragment(const Graph& g,
                           const std::vector<uint32_t>& assignment,
                           uint32_t n) {
  auto f = Fragmentation::Create(g, assignment, n);
  DGS_CHECK(f.ok(), "fragmentation failed");
  return std::move(f).value();
}

TEST(MatchTest, SocialExample) {
  auto ex = MakeSocialExample();
  auto frag = MustFragment(ex.g, ex.assignment, 3);
  auto outcome = RunMatch(frag, ex.q, BaselineConfig{});
  EXPECT_TRUE(outcome.result == ComputeSimulation(ex.q, ex.g));
}

TEST(MatchTest, ShipsTheWholeGraph) {
  Rng rng(121);
  Graph g = RandomGraph(1000, 4000, 6, rng);
  auto frag = MustFragment(g, RandomPartition(g, 4, rng), 4);
  PatternSpec spec;
  spec.kind = PatternKind::kCyclic;
  auto q = ExtractPattern(g, spec, rng);
  ASSERT_TRUE(q.ok());
  // Under V1 every node ships 8 fixed bytes and every edge 8, plus headers.
  ClusterOptions v1;
  v1.wire_format = WireFormat::kV1Fixed;
  auto outcome_v1 = RunMatch(frag, *q, BaselineConfig{}, v1);
  uint64_t floor = 8ull * (g.NumNodes() + g.NumEdges());
  EXPECT_GE(outcome_v1.stats.data_bytes, floor);
  EXPECT_TRUE(outcome_v1.result == ComputeSimulation(*q, g));
  // The default V2 delta subgraph ships strictly less, the savings counter
  // accounts for exactly the difference, and the answer is identical.
  auto outcome = RunMatch(frag, *q, BaselineConfig{});
  EXPECT_LT(outcome.stats.data_bytes, outcome_v1.stats.data_bytes);
  EXPECT_EQ(outcome.stats.data_bytes +
                outcome.counters.wire_saved_data_bytes.load(),
            outcome_v1.stats.data_bytes);
  EXPECT_TRUE(outcome.result == outcome_v1.result);
}

TEST(DisHhkTest, SocialExample) {
  auto ex = MakeSocialExample();
  auto frag = MustFragment(ex.g, ex.assignment, 3);
  auto outcome = RunDisHhk(frag, ex.q, BaselineConfig{});
  EXPECT_TRUE(outcome.result == ComputeSimulation(ex.q, ex.g));
}

TEST(DisHhkTest, ShipsOnlyCandidateSubgraph) {
  // Use a graph where most labels are irrelevant to the query: disHHK must
  // ship less than Match.
  Rng rng(123);
  Graph g = RandomGraph(2000, 8000, 15, rng);
  auto assignment = RandomPartition(g, 4, rng);
  auto frag = MustFragment(g, assignment, 4);
  PatternSpec spec;
  spec.num_nodes = 3;
  spec.num_edges = 4;
  spec.kind = PatternKind::kCyclic;
  auto q = ExtractPattern(g, spec, rng);
  ASSERT_TRUE(q.ok());
  auto dishhk = RunDisHhk(frag, *q, BaselineConfig{});
  auto match = RunMatch(frag, *q, BaselineConfig{});
  EXPECT_LT(dishhk.stats.data_bytes, match.stats.data_bytes);
  EXPECT_TRUE(dishhk.result == match.result);
}

TEST(DisHhkTest, CorrectOnManyRandomInputs) {
  Rng rng(125);
  for (int trial = 0; trial < 8; ++trial) {
    Graph g = RandomGraph(300, 1200, 4, rng);
    auto frag = MustFragment(g, RandomPartition(g, 5, rng), 5);
    PatternSpec spec;
    spec.num_nodes = 4;
    spec.num_edges = 6;
    spec.kind = (trial % 2 == 0) ? PatternKind::kAny : PatternKind::kCyclic;
    Pattern q = SynthesizePattern(spec, 4, rng);
    auto outcome = RunDisHhk(frag, q, BaselineConfig{});
    EXPECT_TRUE(outcome.result == ComputeSimulation(q, g)) << trial;
  }
}

TEST(DMesTest, SocialExample) {
  auto ex = MakeSocialExample();
  auto frag = MustFragment(ex.g, ex.assignment, 3);
  auto outcome = RunDMes(frag, ex.q, BaselineConfig{});
  EXPECT_TRUE(outcome.result == ComputeSimulation(ex.q, ex.g));
  EXPECT_GE(outcome.counters.supersteps, 1u);
}

TEST(DMesTest, BrokenGadgetNeedsManySupersteps) {
  // Refutation crawls around the cut cycle one hop per superstep.
  auto gadget = MakeLocalityGadget(8, /*broken=*/true);
  auto frag = MustFragment(gadget.g, gadget.assignment, 8);
  auto outcome = RunDMes(frag, gadget.q, BaselineConfig{});
  EXPECT_FALSE(outcome.result.GraphMatches());
  EXPECT_GE(outcome.counters.supersteps, 8u);
}

TEST(DMesTest, ShipsMoreThanDgpm) {
  // The vertex-centric model re-requests boundary values every superstep;
  // its data shipment must exceed dGPM's by a wide margin.
  auto gadget = MakeLocalityGadget(10, /*broken=*/true);
  auto frag = MustFragment(gadget.g, gadget.assignment, 10);
  auto dmes = RunDMes(frag, gadget.q, BaselineConfig{});
  DgpmConfig plain;
  plain.enable_push = false;
  auto dgpm = RunDgpm(frag, gadget.q, plain);
  EXPECT_TRUE(dmes.result == dgpm.result);
  EXPECT_GT(dmes.stats.data_bytes, 4 * dgpm.stats.data_bytes);
}

TEST(DMesTest, ConvergesWhenNothingToRefute) {
  auto gadget = MakeLocalityGadget(5);  // intact: everything matches
  auto frag = MustFragment(gadget.g, gadget.assignment, 5);
  auto outcome = RunDMes(frag, gadget.q, BaselineConfig{});
  EXPECT_TRUE(outcome.result.GraphMatches());
  // One productive superstep (initial exchange) plus the quiet one.
  EXPECT_LE(outcome.counters.supersteps, 3u);
}

TEST(BaselinesTest, BooleanModeAllAgree) {
  auto ex = MakeSocialExample();
  auto frag = MustFragment(ex.g, ex.assignment, 3);
  BaselineConfig boolean;
  boolean.boolean_only = true;
  EXPECT_TRUE(RunMatch(frag, ex.q, boolean).result.GraphMatches());
  EXPECT_TRUE(RunDisHhk(frag, ex.q, boolean).result.GraphMatches());
  EXPECT_TRUE(RunDMes(frag, ex.q, boolean).result.GraphMatches());
}

}  // namespace
}  // namespace dgs
