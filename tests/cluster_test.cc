#include "runtime/cluster.h"

#include <gtest/gtest.h>

#include <string>

#include "core/protocol.h"
#include "runtime/transport.h"

namespace dgs {
namespace {

// Forwards a counter around a ring of workers `laps` times, then reports to
// the coordinator.
class RingWorker : public SiteActor {
 public:
  RingWorker(uint32_t laps, std::vector<uint32_t>* log)
      : laps_(laps), log_(log) {}

  void Setup(SiteContext& ctx) override {
    if (ctx.site_id() == 0) {
      Blob b;
      b.PutU32(0);
      ctx.Send(1 % ctx.num_workers(), MessageClass::kData, std::move(b));
    }
  }

  void OnMessages(SiteContext& ctx, std::vector<Message> inbox) override {
    for (const Message& m : inbox) {
      Blob::Reader r(m.payload);
      uint32_t hops = r.GetU32() + 1;
      log_->push_back(ctx.site_id());
      if (hops >= laps_ * ctx.num_workers()) {
        Blob done;
        done.PutU32(hops);
        ctx.Send(ctx.coordinator_id(), MessageClass::kResult, std::move(done));
        return;
      }
      Blob b;
      b.PutU32(hops);
      ctx.Send((ctx.site_id() + 1) % ctx.num_workers(), MessageClass::kData,
               std::move(b));
    }
  }

 private:
  uint32_t laps_;
  std::vector<uint32_t>* log_;
};

class RecordingCoordinator : public SiteActor {
 public:
  void OnMessages(SiteContext& ctx, std::vector<Message> inbox) override {
    (void)ctx;
    for (const Message& m : inbox) {
      Blob::Reader r(m.payload);
      final_hops = r.GetU32();
    }
  }
  uint32_t final_hops = 0;
};

TEST(ClusterTest, RingDeliversInOrder) {
  std::vector<uint32_t> log;
  Cluster cluster(4);
  for (uint32_t i = 0; i < 4; ++i) {
    cluster.SetWorker(i, std::make_unique<RingWorker>(2, &log));
  }
  cluster.SetCoordinator(std::make_unique<RecordingCoordinator>());
  RunStats stats = cluster.Run();

  auto* coord = static_cast<RecordingCoordinator*>(cluster.coordinator());
  EXPECT_EQ(coord->final_hops, 8u);
  ASSERT_EQ(log.size(), 8u);
  EXPECT_EQ(log, (std::vector<uint32_t>{1, 2, 3, 0, 1, 2, 3, 0}));
  // 8 data hops = 8 rounds (one message in flight at a time), plus the
  // result delivery round.
  EXPECT_EQ(stats.rounds, 9u);
  EXPECT_EQ(stats.data_messages, 8u);
  EXPECT_EQ(stats.result_messages, 1u);
  // Each data payload is 4 bytes + header.
  EXPECT_EQ(stats.data_bytes, 8 * (4 + kMessageHeaderBytes));
}

// OnQuiesce-driven second phase: workers emit one result at quiescence.
class QuiesceWorker : public SiteActor {
 public:
  void OnMessages(SiteContext&, std::vector<Message>) override {}
  void OnQuiesce(SiteContext& ctx) override {
    if (sent_) return;
    sent_ = true;
    Blob b;
    b.PutU32(ctx.site_id());
    ctx.Send(ctx.coordinator_id(), MessageClass::kResult, std::move(b));
  }

 private:
  bool sent_ = false;
};

class CountingCoordinator : public SiteActor {
 public:
  void OnMessages(SiteContext&, std::vector<Message> inbox) override {
    received += static_cast<uint32_t>(inbox.size());
  }
  uint32_t received = 0;
};

TEST(ClusterTest, OnQuiesceRunsUntilSilent) {
  Cluster cluster(3);
  for (uint32_t i = 0; i < 3; ++i) {
    cluster.SetWorker(i, std::make_unique<QuiesceWorker>());
  }
  cluster.SetCoordinator(std::make_unique<CountingCoordinator>());
  RunStats stats = cluster.Run();
  EXPECT_EQ(static_cast<CountingCoordinator*>(cluster.coordinator())->received,
            3u);
  EXPECT_EQ(stats.result_messages, 3u);
}

TEST(ClusterTest, ByteAccountingByClass) {
  class Sender : public SiteActor {
   public:
    void Setup(SiteContext& ctx) override {
      Blob data;
      data.PutU64(1);
      ctx.Send(ctx.coordinator_id(), MessageClass::kData, std::move(data));
      Blob control;
      control.PutU8(1);
      ctx.Send(ctx.coordinator_id(), MessageClass::kControl,
               std::move(control));
    }
    void OnMessages(SiteContext&, std::vector<Message>) override {}
  };
  // Per-message framing (the historical model, opt-in since coalescing
  // became the default): every message pays a full header.
  {
    ClusterOptions options;
    options.transport.coalesce = false;
    Cluster cluster(2, options);
    cluster.SetWorker(0, std::make_unique<Sender>());
    cluster.SetWorker(1, std::make_unique<Sender>());
    cluster.SetCoordinator(std::make_unique<CountingCoordinator>());
    RunStats stats = cluster.Run();
    EXPECT_EQ(stats.data_bytes, 2 * (8 + kMessageHeaderBytes));
    EXPECT_EQ(stats.control_bytes, 2 * (1 + kMessageHeaderBytes));
    EXPECT_EQ(stats.result_bytes, 0u);
    EXPECT_EQ(stats.TotalBytes(), stats.data_bytes + stats.control_bytes);
  }
  // Coalesced framing (the default): each worker's two messages share one
  // (src, dst) flush — the first pays the full header, the second only the
  // per-entry sub-header. Message counts are identical either way.
  {
    Cluster cluster(2);
    cluster.SetWorker(0, std::make_unique<Sender>());
    cluster.SetWorker(1, std::make_unique<Sender>());
    cluster.SetCoordinator(std::make_unique<CountingCoordinator>());
    RunStats stats = cluster.Run();
    EXPECT_EQ(stats.data_bytes, 2 * (8 + kMessageHeaderBytes));
    EXPECT_EQ(stats.control_bytes, 2 * (1 + kCoalescedEntryBytes));
    EXPECT_EQ(stats.data_messages, 2u);
    EXPECT_EQ(stats.control_messages, 2u);
    EXPECT_EQ(stats.result_bytes, 0u);
    EXPECT_EQ(stats.TotalBytes(), stats.data_bytes + stats.control_bytes);
  }
}

TEST(ClusterTest, NetworkModelChargesLatency) {
  class Ping : public SiteActor {
   public:
    void Setup(SiteContext& ctx) override {
      Blob b;
      b.PutU8(0);
      ctx.Send(ctx.coordinator_id(), MessageClass::kData, std::move(b));
    }
    void OnMessages(SiteContext&, std::vector<Message>) override {}
  };
  NetworkModel model;
  model.latency_per_round_seconds = 0.5;
  Cluster cluster(1, model);
  cluster.SetWorker(0, std::make_unique<Ping>());
  cluster.SetCoordinator(std::make_unique<CountingCoordinator>());
  RunStats stats = cluster.Run();
  EXPECT_GE(stats.response_seconds, 0.5);
  EXPECT_EQ(stats.rounds, 1u);
}

TEST(ClusterTest, ResetAndRerunIsIndependent) {
  // The deploy-once lifecycle: one cluster, several runs. Stats start from
  // zero each run and accounting is identical run to run (the pooled
  // outbox buffers are invisible to behavior).
  std::vector<uint32_t> log;
  Cluster cluster(4);
  RunStats first;
  for (int run = 0; run < 3; ++run) {
    log.clear();
    for (uint32_t i = 0; i < 4; ++i) {
      cluster.SetWorker(i, std::make_unique<RingWorker>(2, &log));
    }
    cluster.SetCoordinator(std::make_unique<RecordingCoordinator>());
    cluster.Reset();
    RunStats stats = cluster.Run();
    EXPECT_EQ(
        static_cast<RecordingCoordinator*>(cluster.coordinator())->final_hops,
        8u);
    EXPECT_EQ(log, (std::vector<uint32_t>{1, 2, 3, 0, 1, 2, 3, 0}));
    if (run == 0) {
      first = stats;
    } else {
      EXPECT_EQ(stats.rounds, first.rounds);
      EXPECT_EQ(stats.data_messages, first.data_messages);
      EXPECT_EQ(stats.data_bytes, first.data_bytes);
      EXPECT_EQ(stats.result_messages, first.result_messages);
    }
  }
}

TEST(ClusterTest, BindWorkerIsNonOwning) {
  // BindWorker/BindCoordinator attach caller-owned actors; the cluster
  // must dispatch to them without taking ownership.
  class Probe : public SiteActor {
   public:
    void Setup(SiteContext& ctx) override {
      Blob b;
      b.PutU8(1);
      ctx.Send(ctx.coordinator_id(), MessageClass::kData, std::move(b));
    }
    void OnMessages(SiteContext&, std::vector<Message>) override {}
  };
  Probe probe;
  CountingCoordinator coordinator;
  Cluster cluster(1);
  cluster.BindWorker(0, &probe);
  cluster.BindCoordinator(&coordinator);
  cluster.Run();
  EXPECT_EQ(coordinator.received, 1u);
  EXPECT_EQ(cluster.worker(0), &probe);
  // Re-run with the same bound actors.
  cluster.Reset();
  cluster.Run();
  EXPECT_EQ(coordinator.received, 2u);
}

TEST(ClusterDeathTest, MissingActorAborts) {
  Cluster cluster(1);
  cluster.SetWorker(0, std::make_unique<QuiesceWorker>());
  // No coordinator installed.
  EXPECT_DEATH(cluster.Run(), "actor");
}

// ---------------------------------------------------------------------------
// Delivery contract × backend: the guarantees above are properties of the
// Cluster delivery loop, not of the backend executing the rounds, so they
// hold verbatim over the multi-process TCP transport. Parameterized worker
// actors may only communicate through messages (worker-side log vectors
// like RingWorker's live in another process under tcp); coordinator state
// is observable on every backend — the coordinator always runs in the
// parent process.
//
// Suite name deliberately avoids the "Cluster" substring: the sanitizer CI
// shards select suites by name, and fork-based transports do not run under
// TSAN/ASAN.
// ---------------------------------------------------------------------------

class TransportDeliveryContract
    : public ::testing::TestWithParam<TransportKind> {
 protected:
  ClusterOptions Options() const {
    ClusterOptions options;
    options.transport.kind = GetParam();
    return options;
  }
};

INSTANTIATE_TEST_SUITE_P(
    DeliveryBackends, TransportDeliveryContract,
    ::testing::Values(TransportKind::kLoopback, TransportKind::kTcp),
    [](const ::testing::TestParamInfo<TransportKind>& info) {
      return std::string(TransportKindName(info.param));
    });

// RingWorker minus the cross-process-invisible log vector.
class HopWorker : public SiteActor {
 public:
  explicit HopWorker(uint32_t laps) : laps_(laps) {}

  void Setup(SiteContext& ctx) override {
    if (ctx.site_id() == 0) {
      Blob b;
      b.PutU32(0);
      ctx.Send(1 % ctx.num_workers(), MessageClass::kData, std::move(b));
    }
  }

  void OnMessages(SiteContext& ctx, std::vector<Message> inbox) override {
    for (const Message& m : inbox) {
      Blob::Reader r(m.payload);
      uint32_t hops = r.GetU32() + 1;
      if (hops >= laps_ * ctx.num_workers()) {
        Blob done;
        done.PutU32(hops);
        ctx.Send(ctx.coordinator_id(), MessageClass::kResult, std::move(done));
        return;
      }
      Blob b;
      b.PutU32(hops);
      ctx.Send((ctx.site_id() + 1) % ctx.num_workers(), MessageClass::kData,
               std::move(b));
    }
  }

 private:
  uint32_t laps_;
};

TEST_P(TransportDeliveryContract, RingDeliversInOrder) {
  Cluster cluster(4, Options());
  for (uint32_t i = 0; i < 4; ++i) {
    cluster.SetWorker(i, std::make_unique<HopWorker>(2));
  }
  cluster.SetCoordinator(std::make_unique<RecordingCoordinator>());
  RunStats stats = cluster.Run();

  auto* coord = static_cast<RecordingCoordinator*>(cluster.coordinator());
  EXPECT_EQ(coord->final_hops, 8u);
  EXPECT_EQ(stats.rounds, 9u);
  EXPECT_EQ(stats.data_messages, 8u);
  EXPECT_EQ(stats.result_messages, 1u);
  EXPECT_EQ(stats.data_bytes, 8 * (4 + kMessageHeaderBytes));
}

TEST_P(TransportDeliveryContract, MessagesBatchedPerDestinationPerRound) {
  class Sender : public SiteActor {
   public:
    void Setup(SiteContext& ctx) override {
      Blob b;
      b.PutU8(static_cast<uint8_t>(ctx.site_id()));
      ctx.Send(ctx.coordinator_id(), MessageClass::kData, std::move(b));
    }
    void OnMessages(SiteContext&, std::vector<Message>) override {}
  };
  class BatchCheck : public SiteActor {
   public:
    void OnMessages(SiteContext&, std::vector<Message> inbox) override {
      ++calls;
      ASSERT_EQ(inbox.size(), 2u);
      EXPECT_EQ(inbox[0].src, 0u);
      EXPECT_EQ(inbox[1].src, 1u);
    }
    int calls = 0;
  };
  Cluster cluster(2, Options());
  cluster.SetWorker(0, std::make_unique<Sender>());
  cluster.SetWorker(1, std::make_unique<Sender>());
  cluster.SetCoordinator(std::make_unique<BatchCheck>());
  RunStats stats = cluster.Run();
  EXPECT_EQ(static_cast<BatchCheck*>(cluster.coordinator())->calls, 1);
  EXPECT_EQ(stats.rounds, 1u);
}

TEST_P(TransportDeliveryContract, ByteAccountingByClass) {
  class Sender : public SiteActor {
   public:
    void Setup(SiteContext& ctx) override {
      Blob data;
      data.PutU64(1);
      ctx.Send(ctx.coordinator_id(), MessageClass::kData, std::move(data));
      Blob control;
      control.PutU8(1);
      ctx.Send(ctx.coordinator_id(), MessageClass::kControl,
               std::move(control));
    }
    void OnMessages(SiteContext&, std::vector<Message>) override {}
  };
  // Default options coalesce (src, dst) flushes: the data message leads
  // each worker's flush at the full header, the control message rides the
  // per-entry sub-header. The opt-out restores per-message framing — on
  // both backends.
  {
    Cluster cluster(2, Options());
    cluster.SetWorker(0, std::make_unique<Sender>());
    cluster.SetWorker(1, std::make_unique<Sender>());
    cluster.SetCoordinator(std::make_unique<CountingCoordinator>());
    RunStats stats = cluster.Run();
    EXPECT_EQ(
        static_cast<CountingCoordinator*>(cluster.coordinator())->received,
        4u);
    EXPECT_EQ(stats.data_bytes, 2 * (8 + kMessageHeaderBytes));
    EXPECT_EQ(stats.control_bytes, 2 * (1 + kCoalescedEntryBytes));
    EXPECT_EQ(stats.result_bytes, 0u);
  }
  {
    ClusterOptions options = Options();
    options.transport.coalesce = false;
    Cluster cluster(2, options);
    cluster.SetWorker(0, std::make_unique<Sender>());
    cluster.SetWorker(1, std::make_unique<Sender>());
    cluster.SetCoordinator(std::make_unique<CountingCoordinator>());
    RunStats stats = cluster.Run();
    EXPECT_EQ(
        static_cast<CountingCoordinator*>(cluster.coordinator())->received,
        4u);
    EXPECT_EQ(stats.data_bytes, 2 * (8 + kMessageHeaderBytes));
    EXPECT_EQ(stats.control_bytes, 2 * (1 + kMessageHeaderBytes));
    EXPECT_EQ(stats.result_bytes, 0u);
  }
}

TEST(ClusterTest, MessagesBatchedPerDestinationPerRound) {
  // Two workers both message the coordinator in Setup: the coordinator must
  // see them in ONE OnMessages call (one round).
  Cluster cluster(2);
  class Sender : public SiteActor {
   public:
    void Setup(SiteContext& ctx) override {
      Blob b;
      b.PutU8(static_cast<uint8_t>(ctx.site_id()));
      ctx.Send(ctx.coordinator_id(), MessageClass::kData, std::move(b));
    }
    void OnMessages(SiteContext&, std::vector<Message>) override {}
  };
  class BatchCheck : public SiteActor {
   public:
    void OnMessages(SiteContext&, std::vector<Message> inbox) override {
      ++calls;
      batch_size = inbox.size();
      // Deterministic source order.
      ASSERT_EQ(inbox.size(), 2u);
      EXPECT_EQ(inbox[0].src, 0u);
      EXPECT_EQ(inbox[1].src, 1u);
    }
    int calls = 0;
    size_t batch_size = 0;
  };
  cluster.SetWorker(0, std::make_unique<Sender>());
  cluster.SetWorker(1, std::make_unique<Sender>());
  cluster.SetCoordinator(std::make_unique<BatchCheck>());
  RunStats stats = cluster.Run();
  auto* coord = static_cast<BatchCheck*>(cluster.coordinator());
  EXPECT_EQ(coord->calls, 1);
  EXPECT_EQ(coord->batch_size, 2u);
  EXPECT_EQ(stats.rounds, 1u);
}

}  // namespace
}  // namespace dgs
