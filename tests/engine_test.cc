// Engine serving semantics: a resident deployment must be observationally
// identical to one-shot DistributedMatch — bit-identical results and
// message/byte accounting for every query of a stream, across executor
// widths and algorithms — and must survive failed queries and poisoned
// runs without losing the deployment.

#include "core/engine.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/api.h"
#include "graph/generators.h"
#include "partition/partitioner.h"
#include "simulation/simulation.h"
#include "test_env.h"

namespace dgs {
namespace {

// Compares everything that must be reproducible between the serving and
// one-shot paths: the answer plus the full deterministic accounting.
void ExpectSameOutcome(const DistOutcome& engine_outcome,
                       const DistOutcome& oneshot, const std::string& what) {
  EXPECT_TRUE(engine_outcome.result == oneshot.result) << what;
  EXPECT_EQ(engine_outcome.stats.data_bytes, oneshot.stats.data_bytes)
      << what;
  EXPECT_EQ(engine_outcome.stats.control_bytes, oneshot.stats.control_bytes)
      << what;
  EXPECT_EQ(engine_outcome.stats.result_bytes, oneshot.stats.result_bytes)
      << what;
  EXPECT_EQ(engine_outcome.stats.data_messages, oneshot.stats.data_messages)
      << what;
  EXPECT_EQ(engine_outcome.stats.control_messages,
            oneshot.stats.control_messages)
      << what;
  EXPECT_EQ(engine_outcome.stats.result_messages,
            oneshot.stats.result_messages)
      << what;
  EXPECT_EQ(engine_outcome.stats.rounds, oneshot.stats.rounds) << what;
  EXPECT_EQ(engine_outcome.counters.vars_shipped.load(),
            oneshot.counters.vars_shipped.load())
      << what;
  EXPECT_EQ(engine_outcome.counters.push_count.load(),
            oneshot.counters.push_count.load())
      << what;
  EXPECT_EQ(engine_outcome.counters.equation_units.load(),
            oneshot.counters.equation_units.load())
      << what;
  EXPECT_EQ(engine_outcome.counters.recomputations.load(),
            oneshot.counters.recomputations.load())
      << what;
  EXPECT_EQ(engine_outcome.counters.supersteps.load(),
            oneshot.counters.supersteps.load())
      << what;
  EXPECT_EQ(engine_outcome.counters.wire_saved_data_bytes.load(),
            oneshot.counters.wire_saved_data_bytes.load())
      << what;
  EXPECT_EQ(engine_outcome.counters.wire_saved_result_bytes.load(),
            oneshot.counters.wire_saved_result_bytes.load())
      << what;
}

// N queries through one Engine == N fresh DistributedMatch calls, for
// every algorithm (incl. kAuto) and executor widths {1, 8}. Each query is
// served twice so the 2nd..Nth-query reuse path (reset, not reconstruct)
// is exercised for every algorithm.
TEST(EngineTest, ReuseMatchesOneShotAcrossAlgorithmsAndThreads) {
  Rng rng(2014);
  Graph g = WebGraph(1200, 5000, kDefaultAlphabet, rng);
  auto assignment = PartitionWithBoundaryRatio(g, 6, 0.3, rng);

  std::vector<Pattern> queries;
  for (int i = 0; i < 3 && queries.size() < 2; ++i) {
    PatternSpec spec;
    spec.num_nodes = 4;
    spec.num_edges = 6;
    spec.kind = PatternKind::kCyclic;
    auto q = ExtractPattern(g, spec, rng);
    if (q.ok()) queries.push_back(*q);
  }
  ASSERT_FALSE(queries.empty());

  for (uint32_t threads : {1u, 8u}) {
    for (Algorithm algorithm :
         {Algorithm::kDgpm, Algorithm::kDgpmNoOpt, Algorithm::kMatch,
          Algorithm::kDisHhk, Algorithm::kDMes, Algorithm::kAuto}) {
      EngineOptions engine_options;
      engine_options.num_threads = threads;
      auto engine = Engine::Create(g, assignment, 6, engine_options);
      ASSERT_TRUE(engine.ok());

      QueryOptions query_options;
      query_options.algorithm = algorithm;

      DistOptions oneshot_options;
      oneshot_options.algorithm = algorithm;
      oneshot_options.num_threads = threads;

      for (int pass = 0; pass < 2; ++pass) {
        for (size_t qi = 0; qi < queries.size(); ++qi) {
          auto served = (*engine)->Match(queries[qi], query_options);
          auto oneshot =
              DistributedMatch(g, assignment, 6, queries[qi],
                               oneshot_options);
          ASSERT_TRUE(served.ok()) << AlgorithmName(algorithm);
          ASSERT_TRUE(oneshot.ok()) << AlgorithmName(algorithm);
          ExpectSameOutcome(
              *served, *oneshot,
              std::string(AlgorithmName(algorithm)) + " t" +
                  std::to_string(threads) + " pass" + std::to_string(pass) +
                  " q" + std::to_string(qi));
        }
      }
      const auto& stats = (*engine)->serving_stats();
      EXPECT_EQ(stats.queries_served, 2 * queries.size());
      EXPECT_EQ(stats.queries_failed, 0u);
    }
  }
}

TEST(EngineTest, ReuseMatchesOneShotOnDagWorkload) {
  auto ex = MakeDagExample();
  for (uint32_t threads : {1u, 8u}) {
    EngineOptions engine_options;
    engine_options.num_threads = threads;
    auto engine = Engine::Create(ex.g, ex.assignment, 5, engine_options);
    ASSERT_TRUE(engine.ok());
    for (Algorithm algorithm : {Algorithm::kDgpmDag, Algorithm::kAuto}) {
      QueryOptions query_options;
      query_options.algorithm = algorithm;
      DistOptions oneshot_options;
      oneshot_options.algorithm = algorithm;
      oneshot_options.num_threads = threads;
      for (int pass = 0; pass < 2; ++pass) {
        auto served = (*engine)->Match(ex.q, query_options);
        auto oneshot =
            DistributedMatch(ex.g, ex.assignment, 5, ex.q, oneshot_options);
        ASSERT_TRUE(served.ok());
        ASSERT_TRUE(oneshot.ok());
        ExpectSameOutcome(*served, *oneshot,
                          std::string("dag ") + AlgorithmName(algorithm));
      }
    }
  }
}

TEST(EngineTest, ReuseMatchesOneShotOnTreeWorkload) {
  Rng rng(77);
  Graph tree = RandomTree(300, 3, rng);
  auto part = TreePartition(tree, 4);
  ASSERT_TRUE(part.ok());
  Pattern chain(MakeGraph({0, 1, 2}, {{0, 1}, {1, 2}}));
  for (uint32_t threads : {1u, 8u}) {
    EngineOptions engine_options;
    engine_options.num_threads = threads;
    auto engine = Engine::Create(tree, *part, 4, engine_options);
    ASSERT_TRUE(engine.ok());
    for (Algorithm algorithm : {Algorithm::kDgpmTree, Algorithm::kAuto}) {
      QueryOptions query_options;
      query_options.algorithm = algorithm;
      DistOptions oneshot_options;
      oneshot_options.algorithm = algorithm;
      oneshot_options.num_threads = threads;
      for (int pass = 0; pass < 2; ++pass) {
        auto served = (*engine)->Match(chain, query_options);
        auto oneshot =
            DistributedMatch(tree, *part, 4, chain, oneshot_options);
        ASSERT_TRUE(served.ok());
        ASSERT_TRUE(oneshot.ok());
        ExpectSameOutcome(*served, *oneshot,
                          std::string("tree ") + AlgorithmName(algorithm));
      }
    }
  }
}

TEST(EngineTest, BorrowedAndAdoptedFragmentationsAgree) {
  auto ex = MakeSocialExample();
  auto frag = Fragmentation::Create(ex.g, ex.assignment, 3);
  ASSERT_TRUE(frag.ok());

  auto borrowed = Engine::Create(ex.g, &*frag, dgs::testing::TestEngineOptions());
  ASSERT_TRUE(borrowed.ok());
  auto adopted = Engine::Create(ex.g, *frag, dgs::testing::TestEngineOptions());  // copy in
  ASSERT_TRUE(adopted.ok());

  QueryOptions query;
  query.algorithm = Algorithm::kDgpm;
  auto a = (*borrowed)->Match(ex.q, query);
  auto b = (*adopted)->Match(ex.q, query);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ExpectSameOutcome(*a, *b, "borrowed vs adopted");
  EXPECT_TRUE(a->result == ComputeSimulation(ex.q, ex.g));
}

TEST(EngineTest, MatchBatchAccumulatesPerQueryMetrics) {
  auto ex = MakeSocialExample();
  auto engine = Engine::Create(ex.g, ex.assignment, 3, dgs::testing::TestEngineOptions());
  ASSERT_TRUE(engine.ok());

  std::vector<Pattern> stream(4, ex.q);
  QueryOptions query;
  query.algorithm = Algorithm::kDgpm;
  BatchOutcome batch = (*engine)->MatchBatch(stream, query);

  ASSERT_EQ(batch.queries.size(), 4u);
  EXPECT_EQ(batch.succeeded, 4u);
  EXPECT_EQ(batch.failed, 0u);
  EXPECT_GT(batch.wall_seconds, 0.0);

  uint64_t summed_bytes = 0;
  uint32_t summed_rounds = 0;
  for (const auto& entry : batch.queries) {
    ASSERT_TRUE(entry.status.ok());
    EXPECT_TRUE(entry.outcome.result == ComputeSimulation(ex.q, ex.g));
    summed_bytes += entry.outcome.stats.data_bytes;
    summed_rounds += entry.outcome.stats.rounds;
  }
  EXPECT_EQ(batch.cumulative.data_bytes, summed_bytes);
  EXPECT_EQ(batch.cumulative.rounds, summed_rounds);
  // Identical queries over a resident deployment cost identical bytes.
  EXPECT_EQ(batch.cumulative.data_bytes,
            4 * batch.queries[0].outcome.stats.data_bytes);
}

TEST(EngineTest, StaysUsableAfterFailedQueries) {
  auto ex = MakeSocialExample();  // cyclic G
  auto engine = Engine::Create(ex.g, ex.assignment, 3, dgs::testing::TestEngineOptions());
  ASSERT_TRUE(engine.ok());

  // Structural precondition failure.
  QueryOptions tree_query;
  tree_query.algorithm = Algorithm::kDgpmTree;
  auto tree_result = (*engine)->Match(ex.q, tree_query);
  EXPECT_EQ(tree_result.status().code(), StatusCode::kFailedPrecondition);

  // Invalid pattern.
  Pattern empty;
  auto empty_result = (*engine)->Match(empty, QueryOptions{});
  EXPECT_EQ(empty_result.status().code(), StatusCode::kInvalidArgument);

  // The deployment is intact: the next query serves normally.
  QueryOptions query;
  query.algorithm = Algorithm::kDgpm;
  auto ok_result = (*engine)->Match(ex.q, query);
  ASSERT_TRUE(ok_result.ok());
  EXPECT_TRUE(ok_result->result == ComputeSimulation(ex.q, ex.g));

  const auto& stats = (*engine)->serving_stats();
  EXPECT_EQ(stats.queries_failed, 2u);
  EXPECT_EQ(stats.queries_served, 1u);
  EXPECT_GE(stats.deploy_seconds, 0.0);
}

TEST(EngineTest, AutoDispatchMatchesOneShotAuto) {
  // kAuto must resolve identically on both paths (tree -> dGPMt here).
  Rng rng(5);
  Graph tree = RandomTree(120, 2, rng);
  auto part = TreePartition(tree, 3);
  ASSERT_TRUE(part.ok());
  Pattern chain(MakeGraph({0, 1}, {{0, 1}}));

  auto engine = Engine::Create(tree, *part, 3, dgs::testing::TestEngineOptions());
  ASSERT_TRUE(engine.ok());
  auto served = (*engine)->Match(chain, QueryOptions{});  // default kAuto
  ASSERT_TRUE(served.ok());
  EXPECT_GT(served->counters.equation_units.load(), 0u);  // dGPMt fingerprint

  DistOptions oneshot_options;
  oneshot_options.algorithm = Algorithm::kAuto;
  auto oneshot = DistributedMatch(tree, *part, 3, chain, oneshot_options);
  ASSERT_TRUE(oneshot.ok());
  ExpectSameOutcome(*served, *oneshot, "auto tree");
}

// A corrupt payload poisons the run (DataLoss) instead of aborting the
// process, and the resident deployment serves the next query unharmed.
class CorruptingActor : public SiteActor {
 public:
  // Ships a truncated payload of the given tag/class to `dst`.
  CorruptingActor(uint32_t dst, MessageClass cls, WireTag tag)
      : dst_(dst), cls_(cls), tag_(tag) {}
  CorruptingActor() = default;

  void Setup(SiteContext& ctx) override {
    Blob blob;
    PutTag(blob, tag_);
    blob.PutU32(1000);  // declares 1000 records, ships none
    ctx.Send(dst_, cls_, std::move(blob));
  }
  void OnMessages(SiteContext& ctx, std::vector<Message> inbox) override {
    (void)ctx;
    (void)inbox;
  }

 private:
  uint32_t dst_ = 1;
  MessageClass cls_ = MessageClass::kData;
  WireTag tag_ = WireTag::kFalseVars;
};

TEST(EngineTest, CorruptPayloadPoisonsRunInsteadOfAborting) {
  auto ex = MakeSocialExample();
  auto frag = Fragmentation::Create(ex.g, ex.assignment, 3);
  ASSERT_TRUE(frag.ok());
  auto deployment = MakeDgpmDeployment(&*frag);

  AlgoCounters counters;
  RunHealth health;
  QueryContext query;
  query.pattern = &ex.q;
  query.counters = &counters;
  query.health = &health;
  query.options.algorithm = Algorithm::kDgpm;

  Cluster cluster(3);
  deployment->BindQuery(query);
  BindToCluster(cluster, *deployment);
  CorruptingActor corruptor;
  cluster.BindWorker(0, &corruptor);  // site 0 now speaks garbage

  cluster.Run();  // must terminate, not abort
  EXPECT_TRUE(health.poisoned());
  EXPECT_EQ(health.ToStatus().code(), StatusCode::kDataLoss);
  // Exactly one data payload failed to decode; the per-class drop counters
  // localize the poison to the corrupted traffic class.
  EXPECT_EQ(health.decode_drops(MessageClass::kData), 1u);
  EXPECT_EQ(health.decode_drops(MessageClass::kControl), 0u);
  EXPECT_EQ(health.decode_drops(MessageClass::kResult), 0u);
  deployment->EndQuery();

  // The same deployment, re-bound with healthy actors, still answers.
  AlgoCounters counters2;
  RunHealth health2;
  QueryContext query2 = query;
  query2.counters = &counters2;
  query2.health = &health2;
  deployment->BindQuery(query2);
  BindToCluster(cluster, *deployment);
  cluster.Reset();
  cluster.Run();
  EXPECT_FALSE(health2.poisoned());
  EXPECT_EQ(health2.decode_drops(MessageClass::kData), 0u);
  SimulationResult result = deployment->Collect(&counters2);
  deployment->EndQuery();
  EXPECT_TRUE(result == ComputeSimulation(ex.q, ex.g));
}

// Drops are charged to the class of the corrupted message, so a poisoned
// result collection is distinguishable from poisoned query traffic.
TEST(EngineTest, DecodeDropsAreCountedPerMessageClass) {
  auto ex = MakeSocialExample();
  auto frag = Fragmentation::Create(ex.g, ex.assignment, 3);
  ASSERT_TRUE(frag.ok());
  auto deployment = MakeDgpmDeployment(&*frag);

  AlgoCounters counters;
  RunHealth health;
  QueryContext query;
  query.pattern = &ex.q;
  query.counters = &counters;
  query.health = &health;
  query.options.algorithm = Algorithm::kDgpm;

  Cluster cluster(3);
  deployment->BindQuery(query);
  BindToCluster(cluster, *deployment);
  CorruptingActor corruptor(cluster.CoordinatorId(), MessageClass::kResult,
                            WireTag::kMatches);
  cluster.BindWorker(0, &corruptor);

  cluster.Run();
  EXPECT_TRUE(health.poisoned());
  EXPECT_EQ(health.decode_drops(MessageClass::kData), 0u);
  EXPECT_EQ(health.decode_drops(MessageClass::kControl), 0u);
  EXPECT_EQ(health.decode_drops(MessageClass::kResult), 1u);
  deployment->EndQuery();
}

// A healthy run surfaces all-zero drop counters through the outcome.
TEST(EngineTest, HealthyOutcomeHasZeroDecodeDrops) {
  auto ex = MakeSocialExample();
  DistOptions options;
  options.algorithm = Algorithm::kDgpm;
  options.num_threads = dgs::testing::EnvThreads();
  auto outcome = DistributedMatch(ex.g, ex.assignment, 3, ex.q, options);
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->health.ok());
  EXPECT_EQ(outcome->decode_drops.Total(), 0u);
}

#ifdef GTEST_HAS_DEATH_TEST
// The single-thread contract is enforced, not just documented: overlapping
// Match calls on ONE Engine must abort with a diagnostic pointing at
// dgs::Server instead of racing on the resident actors. (Concurrency across
// DIFFERENT engines is fine — that is exactly what Server's replicas do.)
TEST(EngineDeathTest, ConcurrentMatchOnOneEngineAborts) {
  Rng rng(3);
  Graph g = WebGraph(20000, 100000, kDefaultAlphabet, rng);
  auto assignment = PartitionWithBoundaryRatio(g, 8, 0.3, rng);
  PatternSpec spec;
  spec.num_nodes = 5;
  spec.num_edges = 10;
  spec.kind = PatternKind::kCyclic;
  auto q = ExtractPattern(g, spec, rng);
  ASSERT_TRUE(q.ok());

  EXPECT_DEATH(
      {
        auto engine = Engine::Create(g, assignment, 8);
        std::atomic<bool> entered{false};
        // One thread holds the engine busy with slow queries; the other
        // thread's very first overlapping Match must trip the guard.
        std::thread busy([&] {
          entered.store(true);
          for (int i = 0; i < 3; ++i) (void)(*engine)->Match(*q);
        });
        while (!entered.load()) std::this_thread::yield();
        for (int i = 0; i < 50; ++i) (void)(*engine)->Match(*q);
        busy.join();
      },
      "one query at a time");
}
#endif  // GTEST_HAS_DEATH_TEST

// The first failure wins deterministically, even sequentially: later
// poisons (any code) never overwrite the recorded classification.
TEST(RunHealthTest, FirstFailureWinsSequentially) {
  RunHealth health;
  EXPECT_FALSE(health.poisoned());
  EXPECT_TRUE(health.ToStatus().ok());

  health.PoisonWith(StatusCode::kUnavailable, "site 2 crashed");
  health.Poison("corrupt payload");
  health.PoisonWith(StatusCode::kDeadlineExceeded, "watchdog");

  Status status = health.ToStatus();
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(status.message(), "site 2 crashed");
}

// An empty reason still latches: the first failure wins even when its
// reason string is "", so a later, wordier failure cannot steal the slot.
TEST(RunHealthTest, EmptyFirstReasonStillWins) {
  RunHealth health;
  health.PoisonWith(StatusCode::kDeadlineExceeded, "");
  health.Poison("a corrupt payload with a long story");
  EXPECT_EQ(health.ToStatus().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(health.ToStatus().message(), "");
}

// Hammer Poison/PoisonWith/PoisonDecode from many threads: the surfaced
// Status must be exactly ONE of the issued (code, reason) pairs — never a
// torn mix — and the per-class drop counters must be exact (every
// PoisonDecode counts, winner or not). Runs under TSAN in CI.
TEST(RunHealthTest, ConcurrentPoisonFirstFailureWinsWithExactDropCounts) {
  constexpr int kThreads = 16;
  constexpr int kIters = 250;
  RunHealth health;
  std::atomic<int> ready{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&health, &ready, t] {
      ready.fetch_add(1);
      while (ready.load() < kThreads) std::this_thread::yield();
      for (int i = 0; i < kIters; ++i) {
        switch (t % 4) {
          case 0:
            health.PoisonDecode(MessageClass::kData, "data corrupt");
            break;
          case 1:
            health.PoisonDecode(MessageClass::kControl, "control corrupt");
            break;
          case 2:
            health.PoisonDecode(MessageClass::kResult, "result corrupt");
            break;
          default:
            health.PoisonWith(StatusCode::kUnavailable, "site crashed");
            break;
        }
        // Once any thread poisoned, every observer agrees.
        EXPECT_TRUE(health.poisoned());
      }
    });
  }
  for (std::thread& worker : threads) worker.join();

  const uint64_t per_class =
      static_cast<uint64_t>(kThreads / 4) * static_cast<uint64_t>(kIters);
  EXPECT_EQ(health.decode_drops(MessageClass::kData), per_class);
  EXPECT_EQ(health.decode_drops(MessageClass::kControl), per_class);
  EXPECT_EQ(health.decode_drops(MessageClass::kResult), per_class);

  const Status status = health.ToStatus();
  if (status.code() == StatusCode::kUnavailable) {
    EXPECT_EQ(status.message(), "site crashed");
  } else {
    ASSERT_EQ(status.code(), StatusCode::kDataLoss);
    EXPECT_TRUE(status.message() == "data corrupt" ||
                status.message() == "control corrupt" ||
                status.message() == "result corrupt")
        << status.message();
  }
  // The winner is latched: repeated reads return the identical pair.
  EXPECT_EQ(health.ToStatus().code(), status.code());
  EXPECT_EQ(health.ToStatus().message(), status.message());
}

TEST(EngineTest, ServingStatsAccumulate) {
  auto ex = MakeSocialExample();
  auto engine = Engine::Create(ex.g, ex.assignment, 3, dgs::testing::TestEngineOptions());
  ASSERT_TRUE(engine.ok());
  QueryOptions query;
  query.algorithm = Algorithm::kDgpm;
  auto first = (*engine)->Match(ex.q, query);
  auto second = (*engine)->Match(ex.q, query);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  const auto& stats = (*engine)->serving_stats();
  EXPECT_EQ(stats.queries_served, 2u);
  EXPECT_EQ(stats.cumulative.data_bytes,
            first->stats.data_bytes + second->stats.data_bytes);
  EXPECT_EQ(stats.counters.vars_shipped.load(),
            first->counters.vars_shipped.load() +
                second->counters.vars_shipped.load());
  // Healthy queries leave the cumulative drop record at zero (it also
  // accumulates over FAILED queries — the only place a poisoned Match's
  // drops remain observable, since it returns just an error Status).
  EXPECT_EQ(stats.decode_drops.Total(), 0u);
}

}  // namespace
}  // namespace dgs
