// Chaos soak: the supervised worker pool (runtime/supervisor.h) and the
// server-level recovery ladder (serve/server.h) under injected process
// death, across every algorithm family.
//
// The invariant this file pins end to end (docs/FAILURES.md): after any
// kill / respawn / fragment-re-ship cycle, results AND charged RunStats
// are bit-identical to a fault-free loopback run — recovery is
// observationally invisible everywhere except the measured
// TransportStats (respawns, processes) and the server's failover/breaker
// counters.
//
// The suite name deliberately MATCHES the CI "Chaos" filters so the
// nightly chaos-soak job picks it up; the forking tests skip themselves
// under TSAN/ASAN (forking a threaded sanitized process is unsupported),
// while the loopback circuit-breaker and spec-message tests run anywhere.

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "core/api.h"
#include "core/engine.h"
#include "graph/generators.h"
#include "partition/partitioner.h"
#include "runtime/fault.h"
#include "runtime/transport.h"
#include "serve/server.h"
#include "test_env.h"
#include "util/check.h"

#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define DGS_FORKING_UNSUPPORTED 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define DGS_FORKING_UNSUPPORTED 1
#endif
#endif

#ifdef DGS_FORKING_UNSUPPORTED
#define DGS_SKIP_IF_NO_FORK() \
  GTEST_SKIP() << "forking under TSAN/ASAN is not supported"
#else
#define DGS_SKIP_IF_NO_FORK() \
  do {                        \
  } while (0)
#endif

namespace dgs {
namespace {

uint64_t ChaosSeed() {
  const char* s = std::getenv("DGS_FAULT_SEED");
  if (s == nullptr) return 7;
  char* end = nullptr;
  unsigned long long seed = std::strtoull(s, &end, 10);
  if (end == s || *end != '\0') return 7;
  return static_cast<uint64_t>(seed);
}

// Everything that must survive a kill/respawn/re-ship cycle unchanged:
// the answer plus the charged deterministic accounting and every
// algorithm counter (mirrors the transport conformance expectations).
void ExpectSameOutcome(const DistOutcome& got, const DistOutcome& want,
                       const std::string& what) {
  EXPECT_TRUE(got.result == want.result) << what;
  EXPECT_EQ(got.stats.data_bytes, want.stats.data_bytes) << what;
  EXPECT_EQ(got.stats.control_bytes, want.stats.control_bytes) << what;
  EXPECT_EQ(got.stats.result_bytes, want.stats.result_bytes) << what;
  EXPECT_EQ(got.stats.data_messages, want.stats.data_messages) << what;
  EXPECT_EQ(got.stats.control_messages, want.stats.control_messages) << what;
  EXPECT_EQ(got.stats.result_messages, want.stats.result_messages) << what;
  EXPECT_EQ(got.stats.rounds, want.stats.rounds) << what;
  EXPECT_EQ(got.counters.vars_shipped.load(),
            want.counters.vars_shipped.load())
      << what;
  EXPECT_EQ(got.counters.push_count.load(), want.counters.push_count.load())
      << what;
  EXPECT_EQ(got.counters.equation_units.load(),
            want.counters.equation_units.load())
      << what;
  EXPECT_EQ(got.counters.recomputations.load(),
            want.counters.recomputations.load())
      << what;
  EXPECT_EQ(got.counters.supersteps.load(), want.counters.supersteps.load())
      << what;
  EXPECT_EQ(got.decode_drops.Total(), 0u) << what;
  EXPECT_TRUE(got.health.ok()) << what;
}

struct Family {
  const char* name;
  Algorithm algorithm;
  Graph g;
  std::vector<uint32_t> assignment;
  uint32_t sites;
  Pattern q;
};

std::vector<Family> MakeFamilies() {
  std::vector<Family> families;
  auto add = [&families](const char* name, Algorithm algorithm, Graph g,
                         uint32_t sites, PatternKind kind, uint64_t seed) {
    Rng rng(seed);
    std::vector<uint32_t> assignment =
        PartitionWithBoundaryRatio(g, sites, 0.3, rng);
    PatternSpec spec;
    spec.num_nodes = 4;
    spec.num_edges = kind == PatternKind::kCyclic ? 6 : 5;
    spec.kind = kind;
    auto q = ExtractPattern(g, spec, rng);
    DGS_CHECK(q.ok(), "pattern extraction failed");
    families.push_back({name, algorithm, std::move(g), std::move(assignment),
                        sites, std::move(*q)});
  };
  {
    Rng rng(2014);
    Graph web = WebGraph(800, 3200, kDefaultAlphabet, rng);
    add("dGPM", Algorithm::kDgpm, web, 4, PatternKind::kCyclic, 11);
    add("dGPMNOpt", Algorithm::kDgpmNoOpt, web, 4, PatternKind::kCyclic, 12);
    add("dMes", Algorithm::kDMes, web, 4, PatternKind::kCyclic, 13);
    add("Match", Algorithm::kMatch, web, 4, PatternKind::kCyclic, 14);
    add("disHHK", Algorithm::kDisHhk, std::move(web), 4, PatternKind::kCyclic,
        15);
  }
  {
    Rng rng(99);
    Graph dag = CitationDag(800, 3000, kDefaultAlphabet, rng);
    add("dGPMd", Algorithm::kDgpmDag, std::move(dag), 4, PatternKind::kDag,
        16);
  }
  {
    Rng rng(5);
    Graph tree = RandomTree(600, kDefaultAlphabet, rng);
    add("dGPMt", Algorithm::kDgpmTree, std::move(tree), 4, PatternKind::kDag,
        17);
  }
  return families;
}

// ---------------------------------------------------------------------------
// Kill → respawn → re-ship, every algorithm family
// ---------------------------------------------------------------------------

// SIGKILL-equivalent worker death (chaos_exit_at_round) mid-query, for
// each of the seven algorithm families on one resident Engine each:
// the poisoned query classifies Unavailable, the pool respawns the dead
// slot and re-ships the fragment view before the next run, and the next
// query on the SAME Engine succeeds bit-identically to loopback.
TEST(ChaosSoak, KillRespawnReshipAcrossAllFamilies) {
  DGS_SKIP_IF_NO_FORK();
  int families_killed = 0;
  for (Family& family : MakeFamilies()) {
    QueryOptions query;
    query.algorithm = family.algorithm;

    EngineOptions loop_options;
    auto reference = Engine::Create(family.g, family.assignment, family.sites,
                                    loop_options);
    ASSERT_TRUE(reference.ok()) << family.name;
    auto want = (*reference)->Match(family.q, query);
    ASSERT_TRUE(want.ok()) << family.name;
    SCOPED_TRACE(family.name);

    EngineOptions options;
    options.transport.kind = TransportKind::kTcp;
    options.transport.num_processes = 2;
    options.transport.chaos_exit_at_round = 1;  // generation 0 dies, once
    auto engine = Engine::Create(family.g, family.assignment, family.sites,
                                 options);
    ASSERT_TRUE(engine.ok()) << family.name;

    // chaos_exit_at_round kills a worker the first time a DELIVERY round
    // arrives in its process. A family whose inter-site traffic all lands
    // on the parent-local coordinator (the Match baseline: workers compute
    // in the setup round, ship upward, and never receive a delivery) has
    // no worker-side kill window — its query must simply succeed, intact.
    auto poisoned = (*engine)->Match(family.q, query);
    if (poisoned.ok()) {
      ExpectSameOutcome(*poisoned, *want, family.name);
      EXPECT_EQ(poisoned->transport.respawns, 0u) << family.name;
      continue;
    }
    ++families_killed;
    EXPECT_EQ(poisoned.status().code(), StatusCode::kUnavailable)
        << family.name << ": " << poisoned.status().ToString();

    auto healed = (*engine)->Match(family.q, query);
    ASSERT_TRUE(healed.ok())
        << family.name << ": " << healed.status().ToString();
    ExpectSameOutcome(*healed, *want, family.name);
    EXPECT_GE(healed->transport.respawns, 1u) << family.name;

    EXPECT_EQ((*engine)->serving_stats().queries_failed, 1u) << family.name;
    EXPECT_EQ((*engine)->serving_stats().queries_served, 1u) << family.name;
  }
  // The families with worker-to-worker refinement traffic MUST have
  // exercised the kill window; a regression that stops the chaos from
  // firing (or stops deliveries from reaching workers) trips this floor.
  EXPECT_GE(families_killed, 4);
}

// A worker group that keeps dying (chaos armed for every generation)
// exhausts its bounded respawn budget, and the session fails with
// ResourceExhausted naming the group — the supervisor's own circuit
// breaker, instead of an unbounded fork loop.
TEST(ChaosSoak, RespawnBudgetExhaustionClassifiesResourceExhausted) {
  DGS_SKIP_IF_NO_FORK();
  Family family = std::move(MakeFamilies()[0]);  // dGPM
  QueryOptions query;
  query.algorithm = family.algorithm;

  EngineOptions options;
  options.transport.kind = TransportKind::kTcp;
  options.transport.num_processes = 2;
  options.transport.chaos_exit_at_round = 1;
  options.transport.chaos_kill_generation = 1000;  // every fleet dies
  options.transport.max_worker_respawns = 1;
  options.transport.respawn_backoff_seconds = 0.001;
  auto engine = Engine::Create(family.g, family.assignment, family.sites,
                               options);
  ASSERT_TRUE(engine.ok());

  // Generation 0 dies, then the single budgeted respawn (generation 1)
  // dies too; both queries classify Unavailable.
  for (int i = 0; i < 2; ++i) {
    auto outcome = (*engine)->Match(family.q, query);
    ASSERT_FALSE(outcome.ok()) << "query " << i;
    EXPECT_EQ(outcome.status().code(), StatusCode::kUnavailable)
        << "query " << i << ": " << outcome.status().ToString();
  }

  // The next run needs a second respawn, which is over budget.
  auto exhausted = (*engine)->Match(family.q, query);
  ASSERT_FALSE(exhausted.ok());
  EXPECT_EQ(exhausted.status().code(), StatusCode::kResourceExhausted)
      << exhausted.status().ToString();
  EXPECT_NE(exhausted.status().message().find("respawn budget"),
            std::string::npos)
      << exhausted.status().ToString();
}

// ---------------------------------------------------------------------------
// Server-level failover
// ---------------------------------------------------------------------------

// A replica whose fleet crashes mid-query does not surface the failure:
// the job is re-enqueued at its original priority for another replica
// (ServerStats::failovers), the same-replica retry is the backstop, and
// the client sees one Submit and one bit-identical success.
TEST(ChaosSoak, ServerFailoverHidesReplicaCrash) {
  DGS_SKIP_IF_NO_FORK();
  Family family = std::move(MakeFamilies()[0]);  // dGPM
  QueryOptions query;
  query.algorithm = family.algorithm;

  DistOptions loop_options;
  loop_options.algorithm = family.algorithm;
  auto reference = DistributedMatch(family.g, family.assignment, family.sites,
                                    family.q, loop_options);
  ASSERT_TRUE(reference.ok());

  ServerOptions options;
  options.num_replicas = 2;
  options.cache = CacheMode::kOff;
  options.engine.transport.kind = TransportKind::kTcp;
  options.engine.transport.num_processes = 2;
  options.engine.transport.chaos_exit_at_round = 1;
  options.retry.max_attempts = 2;  // backstop once failovers are spent
  auto server = Server::Create(family.g, family.assignment, family.sites,
                               options);
  ASSERT_TRUE(server.ok());

  auto outcome = (*server)->Match(family.q, query);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_TRUE(outcome->result == reference->result);
  EXPECT_EQ(outcome->stats.data_bytes, reference->stats.data_bytes);

  (*server)->Shutdown();
  ServerStats stats = (*server)->stats();
  EXPECT_EQ(stats.served, 1u);
  EXPECT_EQ(stats.failed, 0u);
  // The first replica's generation-0 fleet died: the query failed over.
  EXPECT_GE(stats.failovers, 1u);
}

// ---------------------------------------------------------------------------
// Circuit breaker (loopback — deterministic, no forking, sanitizer-clean)
// ---------------------------------------------------------------------------

// watchdog_rounds = 1 converts every run into a deterministic retryable
// DeadlineExceeded: the single replica accumulates strikes, the circuit
// opens, and a Submit that arrives while the probe is still in flight is
// shed with ResourceExhausted instead of queueing doomed work.
TEST(ChaosSoak, CircuitBreakerShedsWhileProbeInFlight) {
  Family family = std::move(MakeFamilies()[0]);  // dGPM
  QueryOptions query;
  query.algorithm = family.algorithm;

  ServerOptions options;
  options.num_replicas = 1;
  options.cache = CacheMode::kOff;
  options.engine.watchdog_rounds = 1;  // every run trips the watchdog
  options.circuit_breaker_strikes = 1;
  // The probe's first attempt fails, then sleeps >= 1s before its second:
  // a guaranteed window during which the circuit is open AND the probe
  // slot is taken, so the next Submit is deterministically shed.
  options.retry.max_attempts = 2;
  options.retry.backoff_seconds = 1.0;
  auto server = Server::Create(family.g, family.assignment, family.sites,
                               options);
  ASSERT_TRUE(server.ok());

  // Strike: both attempts trip the watchdog; the circuit opens.
  auto strike = (*server)->Match(family.q, query);
  ASSERT_FALSE(strike.ok());
  EXPECT_EQ(strike.status().code(), StatusCode::kDeadlineExceeded);

  // The next Submit is admitted as the probe...
  ServerTicket probe = (*server)->Submit(family.q, query);
  // ...and while it is in flight, further Submits are shed at the door.
  ServerTicket shed = (*server)->Submit(family.q, query);
  auto shed_outcome = shed.Wait();
  ASSERT_FALSE(shed_outcome.ok());
  EXPECT_EQ(shed_outcome.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(shed_outcome.status().message().find("degraded"),
            std::string::npos)
      << shed_outcome.status().ToString();

  auto probe_outcome = probe.Wait();
  EXPECT_FALSE(probe_outcome.ok());  // watchdog still trips: circuit stays
                                     // open, probe slot freed

  (*server)->Shutdown();
  ServerStats stats = (*server)->stats();
  EXPECT_EQ(stats.degraded_rejections, 1u);
  EXPECT_GE(stats.rejected_overload, stats.degraded_rejections);
  EXPECT_EQ(stats.served, 0u);
}

// crash_once chaos: the first query fails retryably (one strike, circuit
// open at threshold 1), the second query is admitted as the probe, runs
// against the now-healthy deployment, succeeds, and closes the circuit —
// the third query is served normally, nothing was shed.
TEST(ChaosSoak, CircuitBreakerProbeHealsCircuit) {
  Family family = std::move(MakeFamilies()[0]);  // dGPM
  QueryOptions query;
  query.algorithm = family.algorithm;

  DistOptions loop_options;
  loop_options.algorithm = family.algorithm;
  auto reference = DistributedMatch(family.g, family.assignment, family.sites,
                                    family.q, loop_options);
  ASSERT_TRUE(reference.ok());

  ServerOptions options;
  options.num_replicas = 1;
  options.cache = CacheMode::kOff;
  options.engine.faults.crash_site = 1;  // fires exactly once
  options.engine.faults.crash_round = 1;
  options.engine.faults.seed = ChaosSeed();
  options.circuit_breaker_strikes = 1;
  auto server = Server::Create(family.g, family.assignment, family.sites,
                               options);
  ASSERT_TRUE(server.ok());

  auto first = (*server)->Match(family.q, query);
  ASSERT_FALSE(first.ok());
  EXPECT_EQ(first.status().code(), StatusCode::kUnavailable);

  // Probe: the crash already fired, so this succeeds and heals the fleet.
  auto probe = (*server)->Match(family.q, query);
  ASSERT_TRUE(probe.ok()) << probe.status().ToString();
  EXPECT_TRUE(probe->result == reference->result);

  // Circuit closed: normal service, no shedding.
  auto after = (*server)->Match(family.q, query);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_TRUE(after->result == reference->result);

  (*server)->Shutdown();
  ServerStats stats = (*server)->stats();
  EXPECT_EQ(stats.served, 2u);
  EXPECT_EQ(stats.failed, 1u);
  EXPECT_EQ(stats.degraded_rejections, 0u);
}

// ---------------------------------------------------------------------------
// Fault-spec diagnostics (satellite: parser error messages)
// ---------------------------------------------------------------------------

// ParseFaultSpec names the offending token and its 1-based position so a
// bad DGS_FAULTS value is diagnosable from the message alone.
TEST(ChaosSoakSpecMessages, FaultSpecMessagesNameTokenAndPosition) {
  struct Case {
    const char* spec;
    const char* token;    // quoted verbatim in the message
    const char* position; // "at position N" of the token's first char
    const char* detail;   // the reason tail
  };
  const Case cases[] = {
      {"drop", "'drop'", "at position 1", "expected KEY=VALUE"},
      {"data.drop=0.1,seed=x", "'seed=x'", "at position 15",
       "seed wants an unsigned integer"},
      {"data.drop=2", "'data.drop=2'", "at position 1",
       "probability wants a number in [0, 1]"},
      {"bogus.drop=0.1", "'bogus.drop=0.1'", "at position 1",
       "unknown message class 'bogus'"},
      {"data.warp=0.1", "'data.warp=0.1'", "at position 1",
       "unknown key 'warp'"},
      {"crash=1@x", "'crash=1@x'", "at position 1",
       "crash round wants an unsigned 32-bit integer >= 1"},
  };
  for (const Case& c : cases) {
    auto parsed = ParseFaultSpec(c.spec);
    ASSERT_FALSE(parsed.ok()) << c.spec;
    EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument) << c.spec;
    const std::string& message = parsed.status().message();
    EXPECT_NE(message.find(c.token), std::string::npos)
        << c.spec << " -> " << message;
    EXPECT_NE(message.find(c.position), std::string::npos)
        << c.spec << " -> " << message;
    EXPECT_NE(message.find(c.detail), std::string::npos)
        << c.spec << " -> " << message;
  }
}

}  // namespace
}  // namespace dgs
