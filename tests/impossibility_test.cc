// Empirical companion to Theorem 1 (the impossibility of parallel
// scalability): on the Fig. 2 gadget family, |Q| and |Fm| are constants,
// yet the work any algorithm performs grows with the number of fragments n.
// These are regression tests pinning the unavoidable growth.

#include <gtest/gtest.h>

#include "core/api.h"
#include "graph/generators.h"

namespace dgs {
namespace {

DistOutcome RunGadget(size_t n, bool broken, Algorithm algorithm) {
  auto gadget = MakeLocalityGadget(n, broken);
  DistOptions options;
  options.algorithm = algorithm;
  options.enable_push = false;
  auto outcome = DistributedMatch(gadget.g, gadget.assignment,
                                  static_cast<uint32_t>(n), gadget.q, options);
  DGS_CHECK(outcome.ok(), "gadget run failed");
  return std::move(outcome).value();
}

TEST(ImpossibilityTest, GadgetShapeIsConstantPerFragment) {
  for (size_t n : {4u, 16u, 64u}) {
    auto gadget = MakeLocalityGadget(n);
    auto frag = Fragmentation::Create(gadget.g, gadget.assignment,
                                      static_cast<uint32_t>(n));
    ASSERT_TRUE(frag.ok());
    // |Fm| constant: each fragment holds 2 local nodes, 1 virtual node and
    // 2 edges no matter how large n grows.
    EXPECT_EQ(frag->MaxFragmentSize(), 5u);
    // And the boundary is everything: Vf = all A nodes plus nothing else...
    // exactly one virtual node per fragment.
    EXPECT_EQ(frag->NumBoundaryNodes(), n);
  }
}

TEST(ImpossibilityTest, DgpmRoundsGrowLinearlyOnBrokenCycle) {
  // Refuting the broken cycle forces information around the ring: the
  // number of refinement rounds must grow with n even though |Q| and |Fm|
  // are constant — response time cannot be a function of (|Q|, |Fm|) alone.
  uint32_t rounds8 = RunGadget(8, true, Algorithm::kDgpm).stats.rounds;
  uint32_t rounds32 = RunGadget(32, true, Algorithm::kDgpm).stats.rounds;
  uint32_t rounds64 = RunGadget(64, true, Algorithm::kDgpm).stats.rounds;
  EXPECT_GE(rounds32, rounds8 + 16);
  EXPECT_GE(rounds64, rounds32 + 16);
  // Linear in n (each site learns the refutation one hop at a time).
  EXPECT_GE(rounds64, 64u);
}

TEST(ImpossibilityTest, DgpmDataShipmentGrowsLinearlyOnBrokenCycle) {
  // Data shipment grows with n too — it cannot be a function of (|Q|, |F|)
  // alone when |F| is 2: merge the gadget into two fragments (all A nodes
  // vs all B nodes, the Theorem 1(2) construction) and watch DS grow with
  // the cycle length.
  auto ship = [](size_t n) {
    auto gadget = MakeLocalityGadget(n, /*broken=*/true);
    std::vector<uint32_t> two_sites(2 * n);
    for (size_t i = 0; i < 2 * n; ++i) two_sites[i] = i % 2;  // A|B split
    DistOptions options;
    options.enable_push = false;
    auto outcome =
        DistributedMatch(gadget.g, two_sites, 2, gadget.q, options);
    DGS_CHECK(outcome.ok(), "two-site gadget failed");
    return outcome->stats.data_bytes;
  };
  uint64_t ds8 = ship(8);
  uint64_t ds32 = ship(32);
  uint64_t ds128 = ship(128);
  EXPECT_GT(ds32, ds8);
  EXPECT_GT(ds128, ds32);
  // Roughly linear: 16x the nodes should give at least 8x the bytes.
  EXPECT_GE(ds128, 8 * ds8);
}

TEST(ImpossibilityTest, DMesSuperstepsGrowWithN) {
  uint32_t s8 = RunGadget(8, true, Algorithm::kDMes).counters.supersteps;
  uint32_t s24 = RunGadget(24, true, Algorithm::kDMes).counters.supersteps;
  EXPECT_GE(s24, s8 + 8);
}

TEST(ImpossibilityTest, PartitionBoundednessStillHolds) {
  // Theorem 2's consolation: the rounds are bounded by |Vf||Vq| and the
  // shipment by |Ef||Vq| truth values — partition bounded, not |G| bounded.
  for (size_t n : {8u, 16u, 32u}) {
    auto outcome = RunGadget(n, true, Algorithm::kDgpm);
    auto gadget = MakeLocalityGadget(n, true);
    auto frag = Fragmentation::Create(gadget.g, gadget.assignment,
                                      static_cast<uint32_t>(n));
    ASSERT_TRUE(frag.ok());
    uint64_t vf = frag->NumBoundaryNodes();
    uint64_t ef = frag->NumCrossingEdges();
    uint64_t vq = gadget.q.NumNodes();
    EXPECT_LE(outcome.stats.rounds, vf * vq + 2);
    EXPECT_LE(outcome.counters.vars_shipped, ef * vq);
  }
}

TEST(ImpossibilityTest, IntactGadgetAnswerIsBooleanTrueEverywhere) {
  // Sanity: the intact gadget matches at every size (Example 3).
  for (size_t n : {4u, 32u}) {
    auto outcome = RunGadget(n, false, Algorithm::kDgpm);
    EXPECT_TRUE(outcome.result.GraphMatches());
    EXPECT_EQ(outcome.result.RelationSize(), 2 * n);
  }
}

}  // namespace
}  // namespace dgs
