#include "graph/pattern.h"

#include <gtest/gtest.h>

namespace dgs {
namespace {

TEST(PatternTest, BasicAccessors) {
  Pattern q(MakeGraph({3, 4}, {{0, 1}}));
  EXPECT_EQ(q.NumNodes(), 2u);
  EXPECT_EQ(q.NumEdges(), 1u);
  EXPECT_EQ(q.Size(), 3u);
  EXPECT_EQ(q.LabelOf(0), 3u);
  EXPECT_FALSE(q.IsSink(0));
  EXPECT_TRUE(q.IsSink(1));
  EXPECT_EQ(q.Children(0).size(), 1u);
  EXPECT_EQ(q.Parents(1).size(), 1u);
}

TEST(PatternTest, DagDetection) {
  EXPECT_TRUE(Pattern(MakeGraph({0, 1}, {{0, 1}})).IsDag());
  EXPECT_FALSE(Pattern(MakeGraph({0, 1}, {{0, 1}, {1, 0}})).IsDag());
}

TEST(PatternTest, DiameterOfTwoCycle) {
  Pattern q(MakeGraph({0, 1}, {{0, 1}, {1, 0}}));
  EXPECT_EQ(q.Diameter(), 1u);
}

TEST(PatternTest, RanksOfDag) {
  // YB1 -> {YF, F} -> SP -> YB2 -> FB (the Fig. 5 shape).
  Pattern q(MakeGraph({0, 1, 2, 3, 0, 4},
                      {{0, 1}, {0, 2}, {1, 3}, {2, 3}, {3, 4}, {4, 5}}));
  ASSERT_TRUE(q.IsDag());
  const auto& r = q.Ranks();
  EXPECT_EQ(r[5], 0u);  // FB
  EXPECT_EQ(r[4], 1u);  // YB2
  EXPECT_EQ(r[3], 2u);  // SP
  EXPECT_EQ(r[1], 3u);  // YF
  EXPECT_EQ(r[2], 3u);  // F
  EXPECT_EQ(r[0], 4u);  // YB1
  EXPECT_EQ(q.MaxRank(), 4u);
  EXPECT_EQ(q.Diameter(), 4u);
}

TEST(PatternTest, SingleNode) {
  Pattern q(MakeGraph({7}, {}));
  EXPECT_TRUE(q.IsDag());
  EXPECT_EQ(q.Diameter(), 0u);
  EXPECT_EQ(q.MaxRank(), 0u);
  EXPECT_TRUE(q.IsSink(0));
}

TEST(PatternDeathTest, RanksOnCyclicPatternAborts) {
  Pattern q(MakeGraph({0, 0}, {{0, 1}, {1, 0}}));
  EXPECT_DEATH(q.Ranks(), "DAG");
}

}  // namespace
}  // namespace dgs
