#include "core/dgpm_tree.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "partition/partitioner.h"
#include "simulation/simulation.h"

namespace dgs {
namespace {

Fragmentation MustFragment(const Graph& g,
                           const std::vector<uint32_t>& assignment,
                           uint32_t n) {
  auto f = Fragmentation::Create(g, assignment, n);
  DGS_CHECK(f.ok(), "fragmentation failed");
  return std::move(f).value();
}

// XML-ish tree: chapters under a book, sections under chapters.
Graph SmallTree() {
  //        0(book)
  //    1(ch)    2(ch)
  //  3(sec) 4(sec) 5(sec)
  return MakeGraph({0, 1, 1, 2, 2, 2}, {{0, 1}, {0, 2}, {1, 3}, {1, 4}, {2, 5}});
}

TEST(DgpmTreeTest, SmallTreeMatchesCentralized) {
  Graph g = SmallTree();
  // Q: book -> chapter -> section.
  Pattern q(MakeGraph({0, 1, 2}, {{0, 1}, {1, 2}}));
  auto expected = ComputeSimulation(q, g);
  ASSERT_TRUE(expected.GraphMatches());
  // Split the two chapter subtrees from the root.
  auto frag = MustFragment(g, {0, 1, 2, 1, 1, 2}, 3);
  auto outcome = RunDgpmTree(frag, q, DgpmTreeConfig{});
  EXPECT_TRUE(outcome.result == expected);
}

TEST(DgpmTreeTest, ExactlyTwoCoordinatorRoundTrips) {
  Graph g = SmallTree();
  Pattern q(MakeGraph({0, 1, 2}, {{0, 1}, {1, 2}}));
  auto frag = MustFragment(g, {0, 1, 2, 1, 1, 2}, 3);
  auto outcome = RunDgpmTree(frag, q, DgpmTreeConfig{});
  // Round 1: answers to coordinator. Round 2: values back. Round 3: match
  // collection (kResult). The kData round count is therefore at most 2.
  EXPECT_LE(outcome.stats.rounds, 3u);
  EXPECT_GT(outcome.counters.equation_units, 0u);
}

TEST(DgpmTreeTest, RandomTreesMatchCentralized) {
  Rng rng(111);
  for (int trial = 0; trial < 10; ++trial) {
    Graph tree = RandomTree(300 + trial * 50, 4, rng);
    auto assignment = TreePartition(tree, 5);
    ASSERT_TRUE(assignment.ok());
    auto frag = MustFragment(tree, *assignment, 5);
    PatternSpec spec;
    spec.num_nodes = 4;
    spec.num_edges = 4;
    spec.kind = PatternKind::kDag;
    spec.dag_depth = 2;
    auto q = ExtractPattern(tree, spec, rng);
    ASSERT_TRUE(q.ok());
    auto outcome = RunDgpmTree(frag, *q, DgpmTreeConfig{});
    EXPECT_TRUE(outcome.result == ComputeSimulation(*q, tree))
        << "trial " << trial;
  }
}

TEST(DgpmTreeTest, NonMatchingPattern) {
  Graph g = SmallTree();
  // section -> book never holds (wrong direction).
  Pattern q(MakeGraph({2, 0}, {{0, 1}}));
  auto frag = MustFragment(g, {0, 1, 2, 1, 1, 2}, 3);
  auto outcome = RunDgpmTree(frag, q, DgpmTreeConfig{});
  EXPECT_FALSE(outcome.result.GraphMatches());
}

TEST(DgpmTreeTest, DisconnectedFragmentsStillCorrect) {
  // Random (non-subtree) partition: the Corollary 4 bounds no longer apply
  // but the algorithm must still be exact.
  Rng rng(113);
  Graph tree = RandomTree(400, 4, rng);
  auto assignment = RandomPartition(tree, 6, rng);
  auto frag = MustFragment(tree, assignment, 6);
  PatternSpec spec;
  spec.num_nodes = 3;
  spec.num_edges = 3;
  spec.kind = PatternKind::kDag;
  spec.dag_depth = 2;
  auto q = ExtractPattern(tree, spec, rng);
  ASSERT_TRUE(q.ok());
  auto outcome = RunDgpmTree(frag, *q, DgpmTreeConfig{});
  EXPECT_TRUE(outcome.result == ComputeSimulation(*q, tree));
}

TEST(DgpmTreeTest, GeneralizedSolveHandlesCyclicGraphs) {
  // The coordinator solve is greatest-fixpoint, so the implementation stays
  // exact even on cyclic data (bounds don't apply; see header comment).
  auto ex = MakeSocialExample();
  auto frag = MustFragment(ex.g, ex.assignment, 3);
  auto outcome = RunDgpmTree(frag, ex.q, DgpmTreeConfig{});
  EXPECT_TRUE(outcome.result == ComputeSimulation(ex.q, ex.g));
}

TEST(DgpmTreeTest, ForestWithMultipleRoots) {
  // Two disjoint trees.
  Graph g = MakeGraph({0, 1, 0, 1, 1}, {{0, 1}, {2, 3}, {2, 4}});
  Pattern q(MakeGraph({0, 1}, {{0, 1}}));
  auto frag = MustFragment(g, {0, 1, 1, 0, 1}, 2);
  auto outcome = RunDgpmTree(frag, q, DgpmTreeConfig{});
  EXPECT_TRUE(outcome.result == ComputeSimulation(q, g));
}

TEST(DgpmTreeTest, BooleanMode) {
  Graph g = SmallTree();
  Pattern q(MakeGraph({0, 1, 2}, {{0, 1}, {1, 2}}));
  auto frag = MustFragment(g, {0, 1, 2, 1, 1, 2}, 3);
  DgpmTreeConfig config;
  config.boolean_only = true;
  auto outcome = RunDgpmTree(frag, q, config);
  EXPECT_TRUE(outcome.result.GraphMatches());
}

TEST(DgpmTreeTest, DataShipmentScalesWithFragmentsNotTreeSize) {
  // Corollary 4: DS = O(|Q||F|). Double the tree size at fixed |F| with
  // connected fragments; kData bytes should stay in the same ballpark.
  Rng rng(115);
  Pattern q(MakeGraph({0, 1}, {{0, 1}}));
  uint64_t small_ds, large_ds;
  {
    Graph tree = RandomTree(2000, 2, rng);
    auto a = TreePartition(tree, 8);
    ASSERT_TRUE(a.ok());
    auto frag = MustFragment(tree, *a, 8);
    small_ds = RunDgpmTree(frag, q, DgpmTreeConfig{}).stats.data_bytes;
  }
  {
    Graph tree = RandomTree(8000, 2, rng);
    auto a = TreePartition(tree, 8);
    ASSERT_TRUE(a.ok());
    auto frag = MustFragment(tree, *a, 8);
    large_ds = RunDgpmTree(frag, q, DgpmTreeConfig{}).stats.data_bytes;
  }
  // 4x the data, same |F|: shipment should grow far less than 4x (allow 2x
  // slack for label-distribution noise).
  EXPECT_LT(large_ds, 2 * small_ds + 1024);
}

}  // namespace
}  // namespace dgs
