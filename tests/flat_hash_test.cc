#include "util/flat_hash.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_map>
#include <unordered_set>

#include "util/rng.h"

namespace dgs {
namespace {

TEST(FlatHashMapTest, InsertFindBasics) {
  FlatHashMap<uint64_t, uint32_t> map;
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.find(42), nullptr);

  map.insert(42, 7);
  ASSERT_NE(map.find(42), nullptr);
  EXPECT_EQ(*map.find(42), 7u);
  EXPECT_EQ(map.size(), 1u);

  // Duplicate insert keeps the first value (matches emplace semantics).
  uint32_t* stored = map.insert(42, 99);
  EXPECT_EQ(*stored, 7u);
  EXPECT_EQ(map.size(), 1u);
}

TEST(FlatHashMapTest, GrowsAndRetainsEntries) {
  FlatHashMap<uint64_t, uint64_t> map;
  for (uint64_t k = 0; k < 10000; ++k) map.insert(k * 65536 + 3, k);
  EXPECT_EQ(map.size(), 10000u);
  for (uint64_t k = 0; k < 10000; ++k) {
    ASSERT_NE(map.find(k * 65536 + 3), nullptr) << k;
    EXPECT_EQ(*map.find(k * 65536 + 3), k);
  }
  EXPECT_EQ(map.find(12345), nullptr);
}

TEST(FlatHashMapTest, ZeroIsALegalKey) {
  FlatHashMap<uint32_t, int> map;
  map.insert(0, -5);
  ASSERT_NE(map.find(0), nullptr);
  EXPECT_EQ(*map.find(0), -5);
}

TEST(FlatHashMapTest, AgreesWithUnorderedMapUnderRandomOps) {
  Rng rng(123);
  FlatHashMap<uint64_t, uint32_t> flat;
  std::unordered_map<uint64_t, uint32_t> reference;
  for (int i = 0; i < 20000; ++i) {
    uint64_t key = rng.UniformInt(5000);  // collisions on purpose
    uint32_t value = static_cast<uint32_t>(i);
    flat.insert(key, value);
    reference.emplace(key, value);
  }
  EXPECT_EQ(flat.size(), reference.size());
  for (const auto& [key, value] : reference) {
    ASSERT_NE(flat.find(key), nullptr);
    EXPECT_EQ(*flat.find(key), value);
  }
  size_t visited = 0;
  flat.ForEach([&](uint64_t key, uint32_t value) {
    ++visited;
    auto it = reference.find(key);
    ASSERT_NE(it, reference.end());
    EXPECT_EQ(it->second, value);
  });
  EXPECT_EQ(visited, reference.size());
}

TEST(FlatHashSetTest, InsertContains) {
  FlatHashSet<uint64_t> set;
  EXPECT_FALSE(set.contains(9));
  EXPECT_TRUE(set.insert(9));
  EXPECT_FALSE(set.insert(9));  // duplicate
  EXPECT_TRUE(set.contains(9));
  EXPECT_EQ(set.size(), 1u);
}

TEST(FlatHashSetTest, AgreesWithUnorderedSetUnderRandomOps) {
  Rng rng(7);
  FlatHashSet<uint32_t> flat;
  std::unordered_set<uint32_t> reference;
  for (int i = 0; i < 20000; ++i) {
    uint32_t key = static_cast<uint32_t>(rng.UniformInt(3000));
    EXPECT_EQ(flat.insert(key), reference.insert(key).second);
  }
  EXPECT_EQ(flat.size(), reference.size());
  for (uint32_t k = 0; k < 3500; ++k) {
    EXPECT_EQ(flat.contains(k), reference.count(k) > 0) << k;
  }
}

TEST(FlatHashMapTest, ClearResets) {
  FlatHashMap<uint64_t, int> map;
  map.insert(1, 2);
  map.clear();
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.find(1), nullptr);
  map.insert(1, 3);
  EXPECT_EQ(*map.find(1), 3);
}

}  // namespace
}  // namespace dgs
