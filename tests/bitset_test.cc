#include "util/bitset.h"

#include <gtest/gtest.h>

namespace dgs {
namespace {

TEST(BitsetTest, StartsEmpty) {
  DynamicBitset b(100);
  EXPECT_EQ(b.size(), 100u);
  EXPECT_EQ(b.Count(), 0u);
  EXPECT_TRUE(b.None());
  EXPECT_FALSE(b.Any());
}

TEST(BitsetTest, SetResetTest) {
  DynamicBitset b(70);
  b.Set(0);
  b.Set(63);
  b.Set(64);
  b.Set(69);
  EXPECT_TRUE(b.Test(0));
  EXPECT_TRUE(b.Test(63));
  EXPECT_TRUE(b.Test(64));
  EXPECT_TRUE(b.Test(69));
  EXPECT_FALSE(b.Test(1));
  EXPECT_EQ(b.Count(), 4u);
  b.Reset(63);
  EXPECT_FALSE(b.Test(63));
  EXPECT_EQ(b.Count(), 3u);
}

TEST(BitsetTest, AssignDispatches) {
  DynamicBitset b(10);
  b.Assign(3, true);
  EXPECT_TRUE(b.Test(3));
  b.Assign(3, false);
  EXPECT_FALSE(b.Test(3));
}

TEST(BitsetTest, ConstructAllSetRespectsPadding) {
  DynamicBitset b(70, true);
  EXPECT_EQ(b.Count(), 70u);
  b.SetAll();
  EXPECT_EQ(b.Count(), 70u);  // padding bits must not leak into Count
}

TEST(BitsetTest, SetAllResetAll) {
  DynamicBitset b(129);
  b.SetAll();
  EXPECT_EQ(b.Count(), 129u);
  b.ResetAll();
  EXPECT_EQ(b.Count(), 0u);
}

TEST(BitsetTest, AndOrWith) {
  DynamicBitset a(65), b(65);
  a.Set(1);
  a.Set(64);
  b.Set(64);
  b.Set(2);
  DynamicBitset a_and = a;
  a_and.AndWith(b);
  EXPECT_EQ(a_and.Count(), 1u);
  EXPECT_TRUE(a_and.Test(64));
  DynamicBitset a_or = a;
  a_or.OrWith(b);
  EXPECT_EQ(a_or.Count(), 3u);
}

TEST(BitsetTest, Intersects) {
  DynamicBitset a(100), b(100);
  a.Set(50);
  b.Set(51);
  EXPECT_FALSE(a.Intersects(b));
  b.Set(50);
  EXPECT_TRUE(a.Intersects(b));
}

TEST(BitsetTest, ForEachSetAscending) {
  DynamicBitset b(200);
  b.Set(199);
  b.Set(0);
  b.Set(64);
  std::vector<size_t> seen;
  b.ForEachSet([&](size_t i) { seen.push_back(i); });
  EXPECT_EQ(seen, (std::vector<size_t>{0, 64, 199}));
  EXPECT_EQ(b.ToVector(), (std::vector<uint32_t>{0, 64, 199}));
}

TEST(BitsetTest, EqualityIsValueBased) {
  DynamicBitset a(40), b(40);
  a.Set(5);
  EXPECT_FALSE(a == b);
  b.Set(5);
  EXPECT_TRUE(a == b);
  DynamicBitset c(41);
  c.Set(5);
  EXPECT_FALSE(a == c);  // size participates
}

TEST(BitsetTest, EmptyBitset) {
  DynamicBitset b(0);
  EXPECT_EQ(b.Count(), 0u);
  EXPECT_TRUE(b.None());
  b.SetAll();
  EXPECT_EQ(b.Count(), 0u);
}

}  // namespace
}  // namespace dgs
