// QueryCache semantics: per-label candidate bitsets vs brute force, label
// hit/miss accounting, canonical keys (representation-normalizing, option-
// sensitive), result memoization round trips, LRU eviction under the byte
// budget, and mode gating.

#include "serve/query_cache.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/engine.h"
#include "graph/generators.h"
#include "partition/partitioner.h"
#include "serve/server.h"
#include "test_env.h"
#include "util/rng.h"

namespace dgs {
namespace {

Pattern TwoNodePattern(Label a, Label b) {
  return Pattern(MakeGraph({a, b}, {{0, 1}}));
}

TEST(QueryCacheTest, CandidatesMatchBruteForce) {
  Rng rng(2014);
  Graph g = WebGraph(500, 2000, kDefaultAlphabet, rng);
  QueryCache cache(&g, CacheMode::kCandidates, 0);
  for (Label label = 0; label < g.LabelAlphabetSize(); ++label) {
    const DynamicBitset* candidates = cache.Candidates(label);
    ASSERT_NE(candidates, nullptr);
    ASSERT_EQ(candidates->size(), g.NumNodes());
    for (NodeId v = 0; v < g.NumNodes(); ++v) {
      EXPECT_EQ(candidates->Test(v), g.LabelOf(v) == label)
          << "label " << label << " node " << v;
    }
  }
}

TEST(QueryCacheTest, LabelHitMissCountingAcrossQueriesSharingLabels) {
  Graph g = MakeGraph({0, 1, 2, 0, 1}, {{0, 1}, {1, 2}, {3, 4}});
  QueryCache cache(&g, CacheMode::kCandidates, 0);

  // First query touches labels {0, 1}: two misses.
  cache.TouchAndEstimate(TwoNodePattern(0, 1));
  QueryCache::Counters counters = cache.counters();
  EXPECT_EQ(counters.label_misses, 2u);
  EXPECT_EQ(counters.label_hits, 0u);

  // Second query shares label 1, adds label 2: one hit, one miss.
  cache.TouchAndEstimate(TwoNodePattern(1, 2));
  counters = cache.counters();
  EXPECT_EQ(counters.label_misses, 3u);
  EXPECT_EQ(counters.label_hits, 1u);

  // Third query re-uses only resident labels: hits only. A label used by
  // two query nodes is touched once.
  cache.TouchAndEstimate(TwoNodePattern(0, 0));
  counters = cache.counters();
  EXPECT_EQ(counters.label_misses, 3u);
  EXPECT_EQ(counters.label_hits, 2u);
  EXPECT_GT(counters.label_bytes, 0u);
}

TEST(QueryCacheTest, EstimateIsInitialRelationSize) {
  // Labels: two 0-nodes, three 1-nodes.
  Graph g = MakeGraph({0, 0, 1, 1, 1}, {{0, 2}, {1, 3}});
  QueryCache cache(&g, CacheMode::kCandidates, 0);
  // Query nodes labeled 0 and 1: |cand(0)| + |cand(1)| = 2 + 3.
  EXPECT_EQ(cache.TouchAndEstimate(TwoNodePattern(0, 1)), 5u);
  // Two query nodes sharing label 1 count the candidate set twice.
  EXPECT_EQ(cache.TouchAndEstimate(TwoNodePattern(1, 1)), 6u);
  // Unknown label: empty candidate set contributes nothing.
  EXPECT_EQ(cache.TouchAndEstimate(TwoNodePattern(7, 7)), 0u);
}

TEST(QueryCacheTest, CanonicalKeyNormalizesEdgeInsertionOrder) {
  // Same labeled node set and edge set, different construction order.
  GraphBuilder b1(3);
  b1.SetLabel(0, 5);
  b1.SetLabel(1, 6);
  b1.SetLabel(2, 7);
  b1.AddEdge(0, 1);
  b1.AddEdge(0, 2);
  b1.AddEdge(1, 2);
  GraphBuilder b2(3);
  b2.SetLabel(0, 5);
  b2.SetLabel(1, 6);
  b2.SetLabel(2, 7);
  b2.AddEdge(1, 2);
  b2.AddEdge(0, 2);
  b2.AddEdge(0, 1);
  Pattern q1(std::move(b1).Build());
  Pattern q2(std::move(b2).Build());
  QueryOptions options;
  EXPECT_EQ(QueryCache::CanonicalKey(q1, options),
            QueryCache::CanonicalKey(q2, options));
}

TEST(QueryCacheTest, CanonicalKeyDistinguishesStructureLabelsAndOptions) {
  QueryOptions options;
  const std::string base =
      QueryCache::CanonicalKey(TwoNodePattern(1, 2), options);
  // Different label.
  EXPECT_NE(QueryCache::CanonicalKey(TwoNodePattern(1, 3), options), base);
  // Different edge set (same labels).
  Pattern reversed(MakeGraph({1, 2}, {{1, 0}}));
  EXPECT_NE(QueryCache::CanonicalKey(reversed, options), base);
  // Different node count.
  Pattern bigger(MakeGraph({1, 2, 2}, {{0, 1}}));
  EXPECT_NE(QueryCache::CanonicalKey(bigger, options), base);
  // Outcome-relevant option changes key.
  QueryOptions boolean = options;
  boolean.boolean_only = true;
  EXPECT_NE(QueryCache::CanonicalKey(TwoNodePattern(1, 2), boolean), base);
  QueryOptions algo = options;
  algo.algorithm = Algorithm::kDMes;
  EXPECT_NE(QueryCache::CanonicalKey(TwoNodePattern(1, 2), algo), base);
  QueryOptions push = options;
  push.push_threshold = 0.5;
  EXPECT_NE(QueryCache::CanonicalKey(TwoNodePattern(1, 2), push), base);
}

DistOutcome OutcomeWithBytes(uint64_t data_bytes, size_t num_data_nodes) {
  DistOutcome outcome;
  outcome.stats.data_bytes = data_bytes;
  outcome.result = SimulationResult(
      std::vector<DynamicBitset>(2, DynamicBitset(num_data_nodes)),
      num_data_nodes);
  return outcome;
}

TEST(QueryCacheTest, LookupInsertRoundTripAndCounters) {
  Graph g = MakeGraph({0, 1}, {{0, 1}});
  QueryCache cache(&g, CacheMode::kFull, 1 << 20);
  const std::string key =
      QueryCache::CanonicalKey(TwoNodePattern(0, 1), QueryOptions{});

  DistOutcome out;
  EXPECT_FALSE(cache.Lookup(key, &out));
  cache.Insert(key, TwoNodePattern(0, 1), OutcomeWithBytes(777, 2), 0);
  ASSERT_TRUE(cache.Lookup(key, &out));
  EXPECT_EQ(out.stats.data_bytes, 777u);

  QueryCache::Counters counters = cache.counters();
  EXPECT_EQ(counters.result_misses, 1u);
  EXPECT_EQ(counters.result_hits, 1u);
  EXPECT_EQ(counters.result_entries, 1u);
  EXPECT_GT(counters.result_bytes, 0u);

  // Duplicate insert is a no-op (deterministic runtime: same key, same
  // outcome).
  cache.Insert(key, TwoNodePattern(0, 1), OutcomeWithBytes(888, 2), 0);
  ASSERT_TRUE(cache.Lookup(key, &out));
  EXPECT_EQ(out.stats.data_bytes, 777u);
  EXPECT_EQ(cache.counters().result_entries, 1u);
}

TEST(QueryCacheTest, ModesGateTheLayers) {
  Graph g = MakeGraph({0, 1}, {{0, 1}});
  const std::string key =
      QueryCache::CanonicalKey(TwoNodePattern(0, 1), QueryOptions{});
  DistOutcome out;

  QueryCache off(&g, CacheMode::kOff, 1 << 20);
  EXPECT_EQ(off.Candidates(0), nullptr);
  EXPECT_EQ(off.TouchAndEstimate(TwoNodePattern(0, 1)), 0u);
  off.Insert(key, TwoNodePattern(0, 1), OutcomeWithBytes(1, 2), 0);
  EXPECT_FALSE(off.Lookup(key, &out));
  QueryCache::Counters counters = off.counters();
  EXPECT_EQ(counters.label_misses + counters.label_hits, 0u);
  EXPECT_EQ(counters.result_misses + counters.result_hits, 0u);

  // kCandidates: label layer live, result layer dead.
  QueryCache cand(&g, CacheMode::kCandidates, 1 << 20);
  EXPECT_NE(cand.Candidates(0), nullptr);
  cand.Insert(key, TwoNodePattern(0, 1), OutcomeWithBytes(1, 2), 0);
  EXPECT_FALSE(cand.Lookup(key, &out));
  EXPECT_EQ(cand.counters().result_entries, 0u);
}

// A poisoned outcome (chaos-injected corruption, a crashed site, a watchdog
// trip — see runtime/fault.h) is a partial drain, not an answer: memoizing
// it would replay a transient failure to every later identical query.
TEST(QueryCacheTest, NeverMemoizesPoisonedOutcome) {
  Graph g = MakeGraph({0, 1}, {{0, 1}});
  QueryCache cache(&g, CacheMode::kFull, 1 << 20);
  const std::string key =
      QueryCache::CanonicalKey(TwoNodePattern(0, 1), QueryOptions{});

  DistOutcome poisoned = OutcomeWithBytes(123, 2);
  poisoned.health = Status::DataLoss("frame 0->1#0 failed its checksum");
  cache.Insert(key, TwoNodePattern(0, 1), poisoned, 0);
  DistOutcome out;
  EXPECT_FALSE(cache.Lookup(key, &out));
  EXPECT_EQ(cache.counters().result_entries, 0u);

  // A later clean outcome for the same key is memoized normally.
  cache.Insert(key, TwoNodePattern(0, 1), OutcomeWithBytes(456, 2), 0);
  ASSERT_TRUE(cache.Lookup(key, &out));
  EXPECT_EQ(out.stats.data_bytes, 456u);
  EXPECT_TRUE(out.health.ok());
}

// End-to-end regression: a decode fault on the FIRST attempt of a query
// must not pollute the memo for identical resubmissions. The single
// budgeted corruption poisons attempt one (DataLoss, deliberately not
// retried); the resubmission recomputes clean and only then caches.
TEST(QueryCacheTest, ServerDoesNotMemoizePoisonedFirstAttempt) {
  Rng rng(2014);
  Graph g = WebGraph(400, 1600, kDefaultAlphabet, rng);
  std::vector<uint32_t> assignment = PartitionWithBoundaryRatio(g, 4, 0.3, rng);
  Pattern q = TwoNodePattern(0, 1);
  QueryOptions query;

  auto reference_engine =
      Engine::Create(g, assignment, 4, dgs::testing::TestEngineOptions());
  ASSERT_TRUE(reference_engine.ok());
  auto reference = (*reference_engine)->Match(q, query);
  ASSERT_TRUE(reference.ok());

  ServerOptions options;
  options.engine = dgs::testing::TestEngineOptions();
  options.num_replicas = 1;  // one injector, one fault budget
  options.cache = CacheMode::kFull;
  options.engine.faults.data.corrupt = 1.0;
  options.engine.faults.control.corrupt = 1.0;
  options.engine.faults.result.corrupt = 1.0;
  options.engine.faults.max_faults = 1;
  auto server = Server::Create(g, assignment, 4, options);
  ASSERT_TRUE(server.ok());

  auto first = (*server)->Match(q, query);
  ASSERT_FALSE(first.ok());
  EXPECT_EQ(first.status().code(), StatusCode::kDataLoss);

  // If the poisoned outcome had been memoized, this identical resubmission
  // would replay the failure as a cache hit. The fault budget is spent, so
  // a fresh computation runs clean.
  auto second = (*server)->Match(q, query);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_TRUE(second->result == reference->result);

  // Only now is the key resident: the third serve is a memo hit.
  auto third = (*server)->Match(q, query);
  ASSERT_TRUE(third.ok());
  EXPECT_TRUE(third->result == reference->result);

  (*server)->Shutdown();
  ServerStats stats = (*server)->stats();
  EXPECT_EQ(stats.failed, 1u);
  EXPECT_EQ(stats.cache_result_hits, 1u);
}

std::string KeyFor(Label l) {
  return QueryCache::CanonicalKey(TwoNodePattern(l, l + 1), QueryOptions{});
}

// Resident bytes of one memoized entry (all entries in these tests have the
// same shape, hence the same footprint).
size_t MeasuredEntryBytes(const Graph& g) {
  QueryCache probe(&g, CacheMode::kFull, size_t{1} << 30);
  probe.Insert(KeyFor(0), TwoNodePattern(0, 1), OutcomeWithBytes(0, 4096), 0);
  return probe.counters().result_bytes;
}

TEST(QueryCacheTest, LruEvictionRespectsByteBudget) {
  Graph g = MakeGraph({0, 1}, {{0, 1}});
  // Budget fits exactly three of the uniform entries.
  const size_t kBudget = 3 * MeasuredEntryBytes(g) + 1;
  QueryCache cache(&g, CacheMode::kFull, kBudget);

  auto key_for = KeyFor;
  for (Label l = 0; l < 6; ++l) {
    cache.Insert(key_for(l), TwoNodePattern(l, l + 1), OutcomeWithBytes(l, 4096), 0);
  }
  QueryCache::Counters counters = cache.counters();
  EXPECT_LE(counters.result_bytes, kBudget);
  EXPECT_GT(counters.result_evictions, 0u);
  EXPECT_EQ(counters.result_entries + counters.result_evictions, 6u);

  // The most recent entries survive; the oldest were evicted.
  DistOutcome out;
  EXPECT_TRUE(cache.Lookup(key_for(5), &out));
  EXPECT_FALSE(cache.Lookup(key_for(0), &out));

  // An entry larger than the whole budget is refused outright.
  cache.Insert(key_for(40), TwoNodePattern(40, 41), OutcomeWithBytes(0, 1 << 20), 0);
  EXPECT_FALSE(cache.Lookup(key_for(40), &out));
  EXPECT_LE(cache.counters().result_bytes, kBudget);
}

TEST(QueryCacheTest, LookupRefreshesLruPosition) {
  Graph g = MakeGraph({0, 1}, {{0, 1}});
  const size_t kBudget = 3 * MeasuredEntryBytes(g) + 1;
  QueryCache cache(&g, CacheMode::kFull, kBudget);
  auto key_for = KeyFor;
  cache.Insert(key_for(0), TwoNodePattern(0, 0 + 1), OutcomeWithBytes(0, 4096), 0);
  cache.Insert(key_for(1), TwoNodePattern(1, 1 + 1), OutcomeWithBytes(1, 4096), 0);
  cache.Insert(key_for(2), TwoNodePattern(2, 2 + 1), OutcomeWithBytes(2, 4096), 0);
  // Touch the oldest so it is no longer the LRU victim.
  DistOutcome out;
  ASSERT_TRUE(cache.Lookup(key_for(0), &out));
  cache.Insert(key_for(3), TwoNodePattern(3, 3 + 1), OutcomeWithBytes(3, 4096), 0);
  EXPECT_TRUE(cache.Lookup(key_for(0), &out)) << "refreshed entry survives";
  EXPECT_FALSE(cache.Lookup(key_for(1), &out)) << "true LRU entry evicted";
}

}  // namespace
}  // namespace dgs
