#include "simulation/simulation.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "simulation/oracle.h"

namespace dgs {
namespace {

TEST(SimulationTest, SingleNodeLabelMatch) {
  Pattern q(MakeGraph({5}, {}));
  Graph g = MakeGraph({5, 6}, {});
  auto r = ComputeSimulation(q, g);
  EXPECT_TRUE(r.GraphMatches());
  EXPECT_EQ(r.Matches(0), (std::vector<NodeId>{0}));
}

TEST(SimulationTest, SingleNodeNoMatch) {
  Pattern q(MakeGraph({5}, {}));
  Graph g = MakeGraph({6}, {});
  auto r = ComputeSimulation(q, g);
  EXPECT_FALSE(r.GraphMatches());
  EXPECT_EQ(r.RelationSize(), 0u);
}

TEST(SimulationTest, EdgeRequiresChildMatch) {
  // Q: a -> b. G: a-node with b-child matches; a-node without does not.
  Pattern q(MakeGraph({0, 1}, {{0, 1}}));
  Graph g = MakeGraph({0, 1, 0}, {{0, 1}});
  auto r = ComputeSimulation(q, g);
  ASSERT_TRUE(r.GraphMatches());
  EXPECT_EQ(r.Matches(0), (std::vector<NodeId>{0}));
  EXPECT_EQ(r.Matches(1), (std::vector<NodeId>{1}));
}

TEST(SimulationTest, EmptyAnswerWhenOneQueryNodeUnmatched) {
  // b-nodes exist, but no a-node has a b-child => whole answer empty.
  Pattern q(MakeGraph({0, 1}, {{0, 1}}));
  Graph g = MakeGraph({0, 1}, {});  // no edge
  auto r = ComputeSimulation(q, g);
  EXPECT_FALSE(r.GraphMatches());
  EXPECT_EQ(r.MatchSet(1).Count(), 0u);  // reported empty despite label hit
}

TEST(SimulationTest, CycleInQueryNeedsCycleInData) {
  Pattern q(MakeGraph({0, 1}, {{0, 1}, {1, 0}}));
  Graph chain = MakeGraph({0, 1, 0}, {{0, 1}, {1, 2}});
  EXPECT_FALSE(ComputeSimulation(q, chain).GraphMatches());
  Graph cycle = MakeGraph({0, 1}, {{0, 1}, {1, 0}});
  EXPECT_TRUE(ComputeSimulation(q, cycle).GraphMatches());
}

TEST(SimulationTest, SimulationIsCoarserThanIsomorphism) {
  // Q: triangle cycle a->b->c->a; G: hexagon cycle a->b->c->a->b->c.
  // No subgraph isomorphic triangle exists in G, but simulation matches.
  Pattern q(MakeGraph({0, 1, 2}, {{0, 1}, {1, 2}, {2, 0}}));
  Graph g = MakeGraph({0, 1, 2, 0, 1, 2},
                      {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}});
  auto r = ComputeSimulation(q, g);
  ASSERT_TRUE(r.GraphMatches());
  EXPECT_EQ(r.RelationSize(), 6u);
}

TEST(SimulationTest, ManyToManySemantics) {
  // One query node can match many data nodes and vice versa.
  Pattern q(MakeGraph({0, 1}, {{0, 1}}));
  Graph g = MakeGraph({0, 0, 1, 1}, {{0, 2}, {0, 3}, {1, 2}});
  auto r = ComputeSimulation(q, g);
  ASSERT_TRUE(r.GraphMatches());
  EXPECT_EQ(r.Matches(0), (std::vector<NodeId>{0, 1}));
  EXPECT_EQ(r.Matches(1), (std::vector<NodeId>{2, 3}));
}

TEST(SimulationTest, Example2SocialGraph) {
  auto ex = MakeSocialExample();
  auto r = ComputeSimulation(ex.q, ex.g);
  ASSERT_TRUE(r.GraphMatches());
  for (NodeId u = 0; u < 4; ++u) {
    EXPECT_EQ(r.Matches(u), ex.expected_matches[u]);
  }
}

TEST(SimulationTest, BooleanOnlyAgreesOnMatchDecision) {
  Rng rng(21);
  for (int trial = 0; trial < 20; ++trial) {
    Graph g = RandomGraph(200, 800, 4, rng);
    PatternSpec spec;
    spec.num_nodes = 4;
    spec.num_edges = 6;
    spec.kind = PatternKind::kAny;
    Pattern q = SynthesizePattern(spec, 4, rng);
    SimulationOptions boolean;
    boolean.boolean_only = true;
    EXPECT_EQ(ComputeSimulation(q, g).GraphMatches(),
              ComputeSimulation(q, g, boolean).GraphMatches());
  }
}

TEST(SimulationTest, SelfLoopQueryOnSelfLoopData) {
  Pattern q(MakeGraph({0}, {{0, 0}}));
  Graph g = MakeGraph({0, 0}, {{0, 0}, {0, 1}});
  auto r = ComputeSimulation(q, g);
  ASSERT_TRUE(r.GraphMatches());
  EXPECT_EQ(r.Matches(0), (std::vector<NodeId>{0}));
}

TEST(SimulationTest, DisconnectedQueryComponents) {
  Pattern q(MakeGraph({0, 1}, {}));  // two independent label tests
  Graph g = MakeGraph({0, 1, 1}, {});
  auto r = ComputeSimulation(q, g);
  ASSERT_TRUE(r.GraphMatches());
  EXPECT_EQ(r.Matches(1), (std::vector<NodeId>{1, 2}));
}

TEST(SimulationTest, EdgeLabelsViaDummyNodes) {
  // Section 2.1's reduction: a labeled edge becomes a dummy node carrying
  // the edge label, in both the data graph and the pattern. Query: person
  // -[knows]-> person; data has one "knows" edge and one "owes" edge.
  constexpr Label kPerson = 0, kKnows = 10, kOwes = 11;
  GraphBuilder gb;
  NodeId alice = gb.AddNode(kPerson);
  NodeId bob = gb.AddNode(kPerson);
  NodeId carol = gb.AddNode(kPerson);
  gb.AddLabeledEdge(alice, bob, kKnows);
  gb.AddLabeledEdge(bob, carol, kOwes);
  Graph g = std::move(gb).Build();

  GraphBuilder qb;
  NodeId qsrc = qb.AddNode(kPerson);
  NodeId qdst = qb.AddNode(kPerson);
  qb.AddLabeledEdge(qsrc, qdst, kKnows);
  Pattern q(std::move(qb).Build());

  auto result = ComputeSimulation(q, g);
  ASSERT_TRUE(result.GraphMatches());
  // Only alice "knows" someone.
  EXPECT_EQ(result.Matches(qsrc), (std::vector<NodeId>{alice}));
  auto dst_matches = result.Matches(qdst);
  // bob and carol are valid targets (qdst is a sink person).
  EXPECT_EQ(dst_matches, (std::vector<NodeId>{alice, bob, carol}));
}

TEST(SimulationTest, ResultEquality) {
  auto ex = MakeSocialExample();
  auto a = ComputeSimulation(ex.q, ex.g);
  auto b = NaiveSimulation(ex.q, ex.g);
  EXPECT_TRUE(a == b);
}

// Property check: the fast HHK refinement agrees with the naive fixpoint on
// randomized inputs of several shapes.
struct OracleCase {
  uint64_t seed;
  size_t n, m;
  Label alphabet;
  size_t nq, mq;
};

class OracleAgreement : public ::testing::TestWithParam<OracleCase> {};

TEST_P(OracleAgreement, HhkEqualsNaive) {
  const OracleCase& c = GetParam();
  Rng rng(c.seed);
  for (int trial = 0; trial < 8; ++trial) {
    Graph g = RandomGraph(c.n, c.m, c.alphabet, rng);
    PatternSpec spec;
    spec.num_nodes = c.nq;
    spec.num_edges = c.mq;
    spec.kind = (trial % 2 == 0) ? PatternKind::kAny : PatternKind::kCyclic;
    Pattern q = SynthesizePattern(spec, c.alphabet, rng);
    auto fast = ComputeSimulation(q, g);
    auto slow = NaiveSimulation(q, g);
    ASSERT_TRUE(fast == slow)
        << "divergence at seed=" << c.seed << " trial=" << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, OracleAgreement,
    ::testing::Values(OracleCase{101, 30, 60, 2, 3, 4},
                      OracleCase{102, 30, 120, 3, 4, 8},
                      OracleCase{103, 60, 90, 4, 5, 7},
                      OracleCase{104, 60, 240, 2, 5, 10},
                      OracleCase{105, 100, 400, 5, 6, 12},
                      OracleCase{106, 100, 150, 3, 8, 12},
                      OracleCase{107, 150, 600, 6, 4, 8},
                      OracleCase{108, 200, 400, 2, 6, 9}));

}  // namespace
}  // namespace dgs
