// Thread-count determinism of the parallel fixpoint tail (PR 4).
//
// The partitioned chaotic-relaxation drains (simulation/relax.h,
// EquationSystem::PropagateParallel) promise BIT-IDENTICAL results for
// every thread count: the refinement operator is monotone, so the greatest
// fixpoint is unique and drain order is irrelevant, and the atomic support
// counters make every zero crossing fire exactly once. These tests stress
// that contract on large random workloads with heavy removal cascades,
// across widths {1, 2, 8} (plus the DGS_THREADS width the CI 2-thread job
// injects), against the sequential reference path.
//
// The suite doubles as the TSAN workload: build with
//   cmake -B build-tsan -S . -DCMAKE_CXX_FLAGS=-fsanitize=thread \
//         -DCMAKE_EXE_LINKER_FLAGS=-fsanitize=thread
// and run dgs_tests --gtest_filter='ParallelFixpoint*'.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/booleq.h"
#include "graph/generators.h"
#include "simulation/incremental.h"
#include "simulation/relax.h"
#include "simulation/simulation.h"
#include "test_env.h"
#include "util/rng.h"

namespace dgs {
namespace {

// Widths exercised against the sequential reference. EnvThreads() makes
// the CI 2-thread pass add its width even if the list were to change.
std::vector<uint32_t> Widths() {
  std::vector<uint32_t> widths = {2, 8};
  const uint32_t env = dgs::testing::EnvThreads();
  if (env > 1 && std::find(widths.begin(), widths.end(), env) == widths.end()) {
    widths.push_back(env);
  }
  return widths;
}

// A workload whose refinement tail cascades heavily: a cyclic 5-node
// pattern over a web graph, large enough to clear the parallel cutoffs
// (kParallelRefineMinNodes data nodes, kParallelRefineMinSeeds seeds).
struct Workload {
  Graph g;
  Pattern q;
};

Workload MakeWorkload(uint64_t seed, size_t n, size_t m) {
  Rng rng(seed);
  Workload w{WebGraph(n, m, kDefaultAlphabet, rng), Pattern()};
  PatternSpec spec;
  spec.num_nodes = 5;
  spec.num_edges = 10;
  spec.kind = PatternKind::kCyclic;
  auto q = ExtractPattern(w.g, spec, rng);
  EXPECT_TRUE(q.ok());
  w.q = *q;
  return w;
}

TEST(ParallelFixpointTest, KernelBitIdenticalAcrossWidths) {
  auto w = MakeWorkload(2014, 20000, 100000);
  ASSERT_GE(w.g.NumNodes(), kParallelRefineMinNodes);
  SimulationResult reference = ComputeSimulation(w.q, w.g);  // sequential
  for (uint32_t threads : Widths()) {
    SimulationOptions options;
    options.num_threads = threads;
    SimulationResult result = ComputeSimulation(w.q, w.g, options);
    EXPECT_TRUE(result == reference) << "threads=" << threads;
    // Fixpoint sets must match bit for bit, not just via the == shortcut.
    for (NodeId u = 0; u < w.q.NumNodes(); ++u) {
      EXPECT_TRUE(result.FixpointSet(u) == reference.FixpointSet(u))
          << "threads=" << threads << " u=" << u;
    }
  }
}

TEST(ParallelFixpointTest, KernelBooleanModeAgreesAcrossWidths) {
  // Boolean-only runs may abandon the drain early; GraphMatches() must
  // still be exact for every width, matching and non-matching alike.
  for (uint64_t seed : {7u, 99u}) {
    auto w = MakeWorkload(seed, 8192, 40000);
    SimulationOptions ref_options;
    ref_options.boolean_only = true;
    const bool expected = ComputeSimulation(w.q, w.g, ref_options)
                              .GraphMatches();
    EXPECT_EQ(expected, ComputeSimulation(w.q, w.g).GraphMatches());
    for (uint32_t threads : Widths()) {
      SimulationOptions options;
      options.boolean_only = true;
      options.num_threads = threads;
      EXPECT_EQ(expected, ComputeSimulation(w.q, w.g, options).GraphMatches())
          << "seed=" << seed << " threads=" << threads;
    }
  }
}

TEST(ParallelFixpointTest, KernelSeededAcrossSeeds) {
  // Several graphs, including one below the parallel cutoff (falls back to
  // the sequential drain — also bit-identical by construction).
  for (uint64_t seed : {1u, 2u, 3u}) {
    Rng rng(seed);
    Graph g = RandomGraph(seed == 3 ? 512 : 12000,
                          seed == 3 ? 2000 : 60000, kDefaultAlphabet, rng);
    PatternSpec spec;
    spec.num_nodes = 6;
    spec.num_edges = 12;
    spec.kind = PatternKind::kCyclic;
    auto q = ExtractPattern(g, spec, rng);
    ASSERT_TRUE(q.ok());
    SimulationResult reference = ComputeSimulation(*q, g);
    for (uint32_t threads : Widths()) {
      SimulationOptions options;
      options.num_threads = threads;
      EXPECT_TRUE(ComputeSimulation(*q, g, options) == reference)
          << "seed=" << seed << " threads=" << threads;
    }
  }
}

TEST(ParallelFixpointTest, IncrementalCascadesBitIdentical) {
  auto w = MakeWorkload(4242, 12000, 60000);
  IncrementalSimulation sequential(w.q, w.g, 1);
  std::vector<IncrementalSimulation> parallel;
  const auto widths = Widths();
  parallel.reserve(widths.size());
  for (uint32_t threads : widths) parallel.emplace_back(w.q, w.g, threads);

  // Target matched candidates: deleting every out-edge of a matched
  // non-sink node invalidates it and cascades into its predecessors'
  // support counters — the heavy removal cascades the parallel drain is
  // for. (Duplicate deletions are no-ops returning 0 on every instance.)
  const SimulationResult initial = sequential.Result();
  std::vector<std::pair<NodeId, NodeId>> to_delete;
  size_t victims = 0;
  for (NodeId u = 0; u < w.q.NumNodes() && victims < 40; ++u) {
    if (w.q.IsSink(u)) continue;
    for (NodeId v : initial.Matches(u)) {
      auto out = w.g.OutNeighbors(v);
      if (out.empty()) continue;
      for (NodeId t : out) to_delete.emplace_back(v, t);
      if (++victims >= 40) break;
    }
  }
  ASSERT_GT(victims, 0u);

  size_t cascades = 0;
  for (auto [from, to] : to_delete) {
    const size_t expected = sequential.DeleteEdge(from, to);
    cascades += expected;
    for (size_t k = 0; k < parallel.size(); ++k) {
      EXPECT_EQ(expected, parallel[k].DeleteEdge(from, to))
          << "threads=" << widths[k] << " edge " << from << "->" << to;
    }
  }
  EXPECT_GT(cascades, 0u);
  const SimulationResult reference = sequential.Result();
  for (size_t k = 0; k < parallel.size(); ++k) {
    EXPECT_TRUE(parallel[k].Result() == reference)
        << "threads=" << widths[k];
  }
  // And the maintained relation still equals a from-scratch computation.
  GraphBuilder b;
  for (NodeId v = 0; v < w.g.NumNodes(); ++v) b.AddNode(w.g.LabelOf(v));
  for (auto e : w.g.Edges()) {
    if (std::find(to_delete.begin(), to_delete.end(), e) == to_delete.end()) {
      b.AddEdge(e.first, e.second);
    }
  }
  Graph pruned = std::move(b).Build();
  EXPECT_TRUE(reference == ComputeSimulation(w.q, pruned));
}

// Random monotone AND-of-OR system large enough for the sharded drain
// (>= kParallelSolveMinVars variables, >= kParallelSolveMinSeeds seeds).
EquationSystem RandomSystem(size_t nv, Rng& rng) {
  EquationSystem system;
  for (size_t i = 0; i < nv; ++i) system.NewVar();
  for (VarId x = 0; x < nv; ++x) {
    if (rng.UniformInt(4) == 0) continue;  // external variable
    std::vector<std::vector<VarId>> groups;
    const size_t num_groups = 1 + rng.UniformInt(3);
    for (size_t k = 0; k < num_groups; ++k) {
      std::vector<VarId> group;
      const size_t width = 1 + rng.UniformInt(4);
      for (size_t j = 0; j < width; ++j) {
        group.push_back(static_cast<VarId>(rng.UniformInt(nv)));
      }
      groups.push_back(std::move(group));
    }
    system.SetEquation(x, groups);
  }
  return system;
}

TEST(ParallelFixpointTest, BoolEqParallelDrainMatchesSequential) {
  Rng rng(77);
  const size_t nv = 40000;
  EquationSystem base = RandomSystem(nv, rng);
  std::vector<VarId> seeds;
  for (size_t i = 0; i < 200; ++i) {
    seeds.push_back(static_cast<VarId>(rng.UniformInt(nv)));
  }

  EquationSystem sequential = base;
  for (VarId x : seeds) sequential.AssertFalse(x);
  std::vector<VarId> seq_flips;
  sequential.Propagate([&](VarId x) { seq_flips.push_back(x); });
  std::sort(seq_flips.begin(), seq_flips.end());
  ASSERT_GT(seq_flips.size(), seeds.size() / 2);  // it does cascade

  for (uint32_t threads : Widths()) {
    ThreadPool pool(threads);
    EquationSystem parallel = base;
    for (VarId x : seeds) parallel.AssertFalse(x);
    std::vector<VarId> par_flips;
    parallel.PropagateParallel(&pool, [&](VarId x) { par_flips.push_back(x); });
    // PropagateParallel fires on_false in ascending VarId order.
    EXPECT_TRUE(std::is_sorted(par_flips.begin(), par_flips.end()));
    EXPECT_EQ(seq_flips, par_flips) << "threads=" << threads;
    for (VarId x = 0; x < nv; ++x) {
      ASSERT_EQ(sequential.IsFalse(x), parallel.IsFalse(x))
          << "threads=" << threads << " x=" << x;
    }
  }
}

TEST(ParallelFixpointTest, BoolEqSmallSystemFallsBackSequentially) {
  // Below the cutoffs PropagateParallel must behave exactly like
  // Propagate, including the (sequential) callback order.
  Rng rng(5);
  EquationSystem base = RandomSystem(512, rng);
  EquationSystem a = base;
  EquationSystem b = base;
  a.AssertFalse(3);
  b.AssertFalse(3);
  std::vector<VarId> flips_a, flips_b;
  a.Propagate([&](VarId x) { flips_a.push_back(x); });
  ThreadPool pool(8);
  b.PropagateParallel(&pool, [&](VarId x) { flips_b.push_back(x); });
  EXPECT_EQ(flips_a, flips_b);
}

}  // namespace
}  // namespace dgs
