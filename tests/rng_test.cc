#include "util/rng.h"

#include <gtest/gtest.h>

#include <set>

namespace dgs {
namespace {

TEST(RngTest, DeterministicFromSeed) {
  Rng a(12345), b(12345);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 32; ++i) {
    if (a.Next() != b.Next()) ++differing;
  }
  EXPECT_GT(differing, 28);
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.UniformInt(17), 17u);
  }
  EXPECT_EQ(rng.UniformInt(1), 0u);
}

TEST(RngTest, UniformIntCoversRange) {
  Rng rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.UniformInt(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, UniformInRangeInclusive) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 200; ++i) {
    uint64_t x = rng.UniformInRange(5, 7);
    EXPECT_GE(x, 5u);
    EXPECT_LE(x, 7u);
    seen.insert(x);
  }
  EXPECT_EQ(seen.size(), 3u);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.UniformDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, SkewedStaysInBoundsAndSkews) {
  Rng rng(19);
  size_t low = 0;
  constexpr int kSamples = 4000;
  for (int i = 0; i < kSamples; ++i) {
    uint64_t x = rng.Skewed(1000, 0.8);
    ASSERT_LT(x, 1000u);
    if (x < 100) ++low;
  }
  // With theta = 0.8 the lowest decile should receive far more than 10%.
  EXPECT_GT(low, kSamples / 4);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(23);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.Shuffle(v);
  EXPECT_NE(v, sorted);  // overwhelmingly likely with this seed
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

}  // namespace
}  // namespace dgs
