#include "partition/fragmentation.h"

#include <gtest/gtest.h>

#include <set>

#include "graph/generators.h"
#include "partition/partitioner.h"

namespace dgs {
namespace {

TEST(FragmentationTest, RejectsBadAssignments) {
  Graph g = MakeGraph({0, 0}, {{0, 1}});
  EXPECT_EQ(Fragmentation::Create(g, {0}, 2).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Fragmentation::Create(g, {0, 5}, 2).status().code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(Fragmentation::Create(g, {0, 0}, 0).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(FragmentationTest, SingleFragmentHasNoBoundary) {
  Graph g = MakeGraph({0, 1, 2}, {{0, 1}, {1, 2}, {2, 0}});
  auto f = Fragmentation::Create(g, {0, 0, 0}, 1);
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(f->NumBoundaryNodes(), 0u);
  EXPECT_EQ(f->NumCrossingEdges(), 0u);
  const Fragment& frag = f->fragment(0);
  EXPECT_EQ(frag.num_local, 3u);
  EXPECT_EQ(frag.NumVirtual(), 0u);
  EXPECT_TRUE(frag.in_nodes.empty());
}

TEST(FragmentationTest, TwoFragmentBookkeeping) {
  // 0 -> 1 -> 2 -> 0 split as {0, 1} | {2}.
  Graph g = MakeGraph({0, 1, 2}, {{0, 1}, {1, 2}, {2, 0}});
  auto f = Fragmentation::Create(g, {0, 0, 1}, 2);
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(f->NumCrossingEdges(), 2u);   // (1,2) and (2,0)
  EXPECT_EQ(f->NumBoundaryNodes(), 2u);   // nodes 2 and 0

  const Fragment& f0 = f->fragment(0);
  EXPECT_EQ(f0.num_local, 2u);
  EXPECT_EQ(f0.NumVirtual(), 1u);  // node 2
  ASSERT_EQ(f0.in_nodes.size(), 1u);
  EXPECT_EQ(f0.ToGlobal(f0.in_nodes[0]), 0u);  // node 0 is an in-node
  ASSERT_EQ(f0.consumers.size(), 1u);
  ASSERT_EQ(f0.consumers[0].size(), 1u);
  EXPECT_EQ(f0.consumers[0][0].site, 1u);
  EXPECT_EQ(f0.consumers[0][0].source_labels, (std::vector<Label>{2}));

  const Fragment& f1 = f->fragment(1);
  EXPECT_EQ(f1.num_local, 1u);
  EXPECT_EQ(f1.NumVirtual(), 1u);  // node 0
  ASSERT_EQ(f1.in_nodes.size(), 1u);
  EXPECT_EQ(f1.ToGlobal(f1.in_nodes[0]), 2u);
}

TEST(FragmentationTest, LocalGraphStructure) {
  Graph g = MakeGraph({0, 1, 2}, {{0, 1}, {1, 2}, {2, 0}});
  auto f = Fragmentation::Create(g, {0, 0, 1}, 2);
  ASSERT_TRUE(f.ok());
  const Fragment& f0 = f->fragment(0);
  // Local edge (0,1) plus crossing edge (1, virtual 2); the virtual node
  // has no out-edges here.
  EXPECT_EQ(f0.graph.NumEdges(), 2u);
  NodeId v2 = f0.ToLocal(2);
  ASSERT_NE(v2, kInvalidNode);
  EXPECT_TRUE(f0.IsVirtual(v2));
  EXPECT_EQ(f0.graph.OutDegree(v2), 0u);
  EXPECT_EQ(f0.graph.LabelOf(v2), 2u);  // labels ride along
}

TEST(FragmentationTest, SocialExampleMatchesExample4) {
  auto ex = MakeSocialExample();
  auto f = Fragmentation::Create(ex.g, ex.assignment, 3);
  ASSERT_TRUE(f.ok());
  const Fragment& f1 = f->fragment(0);
  // F1.O = {f4, f2, yf2}; F1.I = {sp1, yf1} (Example 4).
  EXPECT_EQ(f1.NumVirtual(), 3u);
  std::set<std::string> in_names;
  for (NodeId v : f1.in_nodes) {
    in_names.insert(ex.node_names[f1.ToGlobal(v)]);
  }
  EXPECT_EQ(in_names, (std::set<std::string>{"sp1", "yf1"}));

  // Example 5: site S3's dependency edges: S1 consumes f4, S2 consumes
  // sp3 and yf3 -- i.e., F3's in-nodes {f4, sp3, yf3}.
  const Fragment& f3 = f->fragment(2);
  std::set<std::string> f3_in;
  for (NodeId v : f3.in_nodes) f3_in.insert(ex.node_names[f3.ToGlobal(v)]);
  EXPECT_EQ(f3_in, (std::set<std::string>{"f4", "sp3", "yf3"}));
}

TEST(FragmentationTest, EmptyFragmentAllowed) {
  Graph g = MakeGraph({0, 0}, {{0, 1}});
  auto f = Fragmentation::Create(g, {0, 0}, 3);
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(f->fragment(1).num_local, 0u);
  EXPECT_EQ(f->fragment(2).num_local, 0u);
}

TEST(FragmentationTest, InvariantsOnRandomGraph) {
  Rng rng(31);
  Graph g = RandomGraph(400, 1600, 6, rng);
  auto assignment = RandomPartition(g, 7, rng);
  auto f = Fragmentation::Create(g, assignment, 7);
  ASSERT_TRUE(f.ok());

  // (1) Local node counts partition V.
  size_t total_local = 0;
  for (uint32_t i = 0; i < 7; ++i) total_local += f->fragment(i).num_local;
  EXPECT_EQ(total_local, g.NumNodes());

  // (2) Crossing edge count matches a direct scan.
  size_t crossing = 0;
  for (auto [a, b] : g.Edges()) {
    if (assignment[a] != assignment[b]) ++crossing;
  }
  EXPECT_EQ(f->NumCrossingEdges(), crossing);

  // (3) Union of virtual-node sets == union of in-node sets (Section 2.2).
  std::set<NodeId> virtuals, in_nodes;
  for (uint32_t i = 0; i < 7; ++i) {
    const Fragment& frag = f->fragment(i);
    for (NodeId v = frag.num_local; v < frag.graph.NumNodes(); ++v) {
      virtuals.insert(frag.ToGlobal(v));
    }
    for (NodeId v : frag.in_nodes) in_nodes.insert(frag.ToGlobal(v));
  }
  EXPECT_EQ(virtuals, in_nodes);
  EXPECT_EQ(virtuals.size(), f->NumBoundaryNodes());

  // (4) Every fragment's local edges exist in G and every G edge appears in
  // exactly one fragment (at its source's home).
  size_t edge_total = 0;
  for (uint32_t i = 0; i < 7; ++i) {
    const Fragment& frag = f->fragment(i);
    for (NodeId v = 0; v < frag.num_local; ++v) {
      for (NodeId w : frag.graph.OutNeighbors(v)) {
        EXPECT_TRUE(g.HasEdge(frag.ToGlobal(v), frag.ToGlobal(w)));
        ++edge_total;
      }
    }
  }
  EXPECT_EQ(edge_total, g.NumEdges());

  // (5) Consumer annotations are sound: site j is a consumer of in-node v
  // iff j has a crossing edge into v.
  for (uint32_t i = 0; i < 7; ++i) {
    const Fragment& frag = f->fragment(i);
    for (size_t k = 0; k < frag.in_nodes.size(); ++k) {
      NodeId global = frag.ToGlobal(frag.in_nodes[k]);
      for (const InNodeConsumer& c : frag.consumers[k]) {
        EXPECT_NE(c.site, i);
        bool found = false;
        for (NodeId p : g.InNeighbors(global)) {
          if (assignment[p] == c.site) {
            found = true;
            // Source labels include this predecessor's label.
          }
        }
        EXPECT_TRUE(found);
      }
    }
  }

  EXPECT_GE(f->MaxFragmentSize(), (g.NumNodes() + g.NumEdges()) / 7);
}

}  // namespace
}  // namespace dgs
