#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace dgs {
namespace {

TEST(ThreadPoolTest, SingleThreadRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::vector<int> hits(10, 0);
  pool.ParallelFor(10, [&](size_t i) { hits[i] = static_cast<int>(i); });
  for (int i = 0; i < 10; ++i) EXPECT_EQ(hits[i], i);
}

TEST(ThreadPoolTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  constexpr size_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelFor(kN, [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPoolTest, BarrierBetweenConsecutiveCalls) {
  ThreadPool pool(4);
  std::vector<uint64_t> data(1000, 0);
  // Each pass depends on the previous one being fully done.
  for (int pass = 0; pass < 50; ++pass) {
    pool.ParallelFor(data.size(), [&](size_t i) { data[i] += 1; });
  }
  for (uint64_t v : data) EXPECT_EQ(v, 50u);
}

TEST(ThreadPoolTest, ZeroAndOneItems) {
  ThreadPool pool(4);
  int calls = 0;
  pool.ParallelFor(0, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.ParallelFor(1, [&](size_t) { ++calls; });  // runs on the caller
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPoolTest, ParallelForBlocksCoversRange) {
  ThreadPool pool(3);
  constexpr size_t kN = 100001;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelForBlocks(kN, 4096, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (size_t i = 0; i < kN; ++i) ASSERT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPoolTest, SkewedWorkSelfBalances) {
  // One huge item plus many small ones: the atomic-index distribution must
  // not assign the small items to the lane stuck on the big one. We can't
  // assert timing on 1-core CI, but we can assert completion + coverage.
  ThreadPool pool(4);
  std::atomic<uint64_t> sum{0};
  pool.ParallelFor(64, [&](size_t i) {
    uint64_t local = 0;
    const uint64_t reps = (i == 0) ? 2000000 : 1000;
    for (uint64_t k = 0; k < reps; ++k) local += k % 7;
    sum.fetch_add(local + i);
  });
  EXPECT_GT(sum.load(), 0u);
}

TEST(ThreadPoolTest, HardwareThreadsAtLeastOne) {
  EXPECT_GE(ThreadPool::HardwareThreads(), 1u);
}

TEST(ThreadPoolTest, NestedParallelForRunsInline) {
  // Regression test: a ParallelFor issued from inside a job on the same
  // pool used to overwrite the in-flight job_/total_/next_ state,
  // corrupting or deadlocking the outer loop. The nested call must detect
  // the reentrancy and execute inline on the calling lane.
  ThreadPool pool(4);
  constexpr size_t kOuter = 16, kInner = 32;
  std::vector<std::atomic<int>> hits(kOuter * kInner);
  pool.ParallelFor(kOuter, [&](size_t i) {
    pool.ParallelFor(kInner, [&](size_t j) {
      hits[i * kInner + j].fetch_add(1);
    });
  });
  for (size_t k = 0; k < hits.size(); ++k) {
    ASSERT_EQ(hits[k].load(), 1) << "index " << k;
  }
}

TEST(ThreadPoolTest, DeeplyNestedAndBlockedNestingStaysCorrect) {
  // Three levels deep, mixing ParallelFor and ParallelForBlocks; every
  // leaf index must execute exactly once and the barriers must hold.
  ThreadPool pool(3);
  constexpr size_t kA = 4, kB = 6, kC = 10;
  std::vector<std::atomic<int>> hits(kA * kB * kC);
  pool.ParallelFor(kA, [&](size_t a) {
    pool.ParallelForBlocks(kB, 2, [&](size_t begin, size_t end) {
      for (size_t b = begin; b < end; ++b) {
        pool.ParallelFor(kC, [&](size_t c) {
          hits[(a * kB + b) * kC + c].fetch_add(1);
        });
      }
    });
  });
  for (size_t k = 0; k < hits.size(); ++k) {
    ASSERT_EQ(hits[k].load(), 1) << "index " << k;
  }
}

}  // namespace
}  // namespace dgs
