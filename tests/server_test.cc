// dgs::Server semantics. The load-bearing contract: concurrent serving is
// observationally identical to sequential Engine::Match — bit-identical
// results and message/byte accounting for every query, across client-thread
// × engine-thread grids, with and without the inter-query cache — plus the
// admission-control behaviors (overload rejection, deadlines, graceful
// shutdown drain) and the shared-deployment plumbing (structure facts,
// const fragmentation across replicas). Runs under TSAN in CI.

#include "serve/server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "core/api.h"
#include "graph/generators.h"
#include "partition/partitioner.h"
#include "simulation/simulation.h"
#include "test_env.h"

namespace dgs {
namespace {

// Everything that must be reproducible between the concurrent-serving and
// sequential paths: the answer plus the full deterministic accounting
// (measured wall-clock fields excluded, as in engine_test).
void ExpectSameOutcome(const DistOutcome& served, const DistOutcome& reference,
                       const std::string& what) {
  EXPECT_TRUE(served.result == reference.result) << what;
  EXPECT_EQ(served.stats.data_bytes, reference.stats.data_bytes) << what;
  EXPECT_EQ(served.stats.control_bytes, reference.stats.control_bytes) << what;
  EXPECT_EQ(served.stats.result_bytes, reference.stats.result_bytes) << what;
  EXPECT_EQ(served.stats.data_messages, reference.stats.data_messages) << what;
  EXPECT_EQ(served.stats.control_messages, reference.stats.control_messages)
      << what;
  EXPECT_EQ(served.stats.result_messages, reference.stats.result_messages)
      << what;
  EXPECT_EQ(served.stats.rounds, reference.stats.rounds) << what;
  EXPECT_EQ(served.counters.vars_shipped.load(),
            reference.counters.vars_shipped.load())
      << what;
  EXPECT_EQ(served.counters.push_count.load(),
            reference.counters.push_count.load())
      << what;
  EXPECT_EQ(served.counters.equation_units.load(),
            reference.counters.equation_units.load())
      << what;
  EXPECT_EQ(served.counters.recomputations.load(),
            reference.counters.recomputations.load())
      << what;
  EXPECT_EQ(served.counters.supersteps.load(),
            reference.counters.supersteps.load())
      << what;
}

struct Workload {
  Graph g;
  std::vector<uint32_t> assignment;
  std::vector<Pattern> queries;
};

Workload MakeWorkload() {
  Workload w;
  Rng rng(2014);
  w.g = WebGraph(1200, 5000, kDefaultAlphabet, rng);
  w.assignment = PartitionWithBoundaryRatio(w.g, 6, 0.3, rng);
  for (int i = 0; i < 8 && w.queries.size() < 4; ++i) {
    PatternSpec spec;
    spec.num_nodes = 4;
    spec.num_edges = 6;
    spec.kind = PatternKind::kCyclic;
    auto q = ExtractPattern(w.g, spec, rng);
    if (q.ok()) w.queries.push_back(*q);
  }
  return w;
}

// K client threads × engine widths {1, 2, 8} × cache {off, full} submit the
// same query set; every outcome must be bit-identical to sequential
// Engine::Match on a plain resident Engine.
TEST(ServerTest, ConcurrentServingMatchesSequentialEngine) {
  Workload w = MakeWorkload();
  ASSERT_GE(w.queries.size(), 2u);
  QueryOptions query;
  query.algorithm = Algorithm::kDgpm;

  // Sequential reference (results and accounting are thread-count
  // invariant by the runtime's determinism contract, so one reference
  // serves every grid cell).
  auto reference_engine = Engine::Create(w.g, w.assignment, 6);
  ASSERT_TRUE(reference_engine.ok());
  std::vector<DistOutcome> reference;
  for (const Pattern& q : w.queries) {
    auto outcome = (*reference_engine)->Match(q, query);
    ASSERT_TRUE(outcome.ok());
    reference.push_back(std::move(outcome).value());
  }

  constexpr uint32_t kClients = 3;
  for (uint32_t engine_threads : {1u, 2u, 8u}) {
    for (CacheMode cache : {CacheMode::kOff, CacheMode::kFull}) {
      ServerOptions options;
      options.engine.num_threads = engine_threads;
      options.num_replicas = 2;
      options.cache = cache;
      auto server = Server::Create(w.g, w.assignment, 6, options);
      ASSERT_TRUE(server.ok());

      // Each client thread submits the whole stream and checks its own
      // outcomes against the sequential reference.
      std::vector<std::thread> clients;
      std::atomic<int> mismatches{0};
      for (uint32_t c = 0; c < kClients; ++c) {
        clients.emplace_back([&, c] {
          std::vector<ServerTicket> tickets;
          for (const Pattern& q : w.queries) {
            tickets.push_back((*server)->Submit(q, query));
          }
          for (size_t qi = 0; qi < tickets.size(); ++qi) {
            auto outcome = tickets[qi].Wait();
            if (!outcome.ok()) {
              ++mismatches;
              continue;
            }
            ExpectSameOutcome(*outcome, reference[qi],
                              "cache " + std::string(CacheModeName(cache)) +
                                  " t" + std::to_string(engine_threads) +
                                  " client " + std::to_string(c) + " q" +
                                  std::to_string(qi));
          }
        });
      }
      for (auto& t : clients) t.join();
      EXPECT_EQ(mismatches.load(), 0);

      (*server)->Shutdown();
      ServerStats stats = (*server)->stats();
      EXPECT_EQ(stats.submitted, kClients * w.queries.size());
      EXPECT_EQ(stats.served, kClients * w.queries.size());
      EXPECT_EQ(stats.failed, 0u);
      EXPECT_EQ(stats.rejected_overload, 0u);
      EXPECT_EQ(stats.replicas, 2u);
      if (cache == CacheMode::kFull) {
        // Every (pattern, options) pair is computed at most once per
        // deployment; the remaining serves are memo hits. (At most,
        // because two clients can race to compute the same fresh key.)
        EXPECT_GT(stats.cache_result_hits, 0u);
        EXPECT_EQ(stats.cache_result_hits + stats.cache_result_misses,
                  stats.served);
      } else {
        EXPECT_EQ(stats.cache_result_hits + stats.cache_result_misses, 0u);
      }
      // Cumulative accounting equals served-count multiples of the
      // reference (every serve of query qi costs exactly reference[qi]).
      uint64_t expected_bytes = 0;
      for (const DistOutcome& r : reference) {
        expected_bytes += kClients * r.stats.data_bytes;
      }
      EXPECT_EQ(stats.cumulative.data_bytes, expected_bytes);
    }
  }
}

TEST(ServerTest, BlockingMatchEqualsEngineMatch) {
  Workload w = MakeWorkload();
  ASSERT_FALSE(w.queries.empty());
  QueryOptions query;
  query.algorithm = Algorithm::kDgpm;

  auto engine = Engine::Create(w.g, w.assignment, 6,
                               dgs::testing::TestEngineOptions());
  ASSERT_TRUE(engine.ok());
  ServerOptions options;
  options.engine = dgs::testing::TestEngineOptions();
  auto server = Server::Create(w.g, w.assignment, 6, options);
  ASSERT_TRUE(server.ok());

  for (size_t qi = 0; qi < w.queries.size(); ++qi) {
    auto served = (*server)->Match(w.queries[qi], query);
    auto direct = (*engine)->Match(w.queries[qi], query);
    ASSERT_TRUE(served.ok());
    ASSERT_TRUE(direct.ok());
    ExpectSameOutcome(*served, *direct, "blocking q" + std::to_string(qi));
  }
}

TEST(ServerTest, QueueOverflowRejectsWithResourceExhausted) {
  Workload w = MakeWorkload();
  ASSERT_FALSE(w.queries.empty());
  ServerOptions options;
  options.num_replicas = 1;
  options.max_queue = 2;
  options.defer_workers = true;  // deterministic backlog: nothing drains
  auto server = Server::Create(w.g, w.assignment, 6, options);
  ASSERT_TRUE(server.ok());

  QueryOptions query;
  query.algorithm = Algorithm::kDgpm;
  std::vector<ServerTicket> tickets;
  for (int i = 0; i < 5; ++i) {
    tickets.push_back((*server)->Submit(w.queries[0], query));
  }
  // The first two were admitted; the rest bounced at the door, already
  // complete with ResourceExhausted.
  for (int i = 2; i < 5; ++i) {
    ASSERT_TRUE(tickets[i].Ready());
    EXPECT_EQ(tickets[i].Wait().status().code(),
              StatusCode::kResourceExhausted);
  }
  EXPECT_FALSE(tickets[0].Ready());

  (*server)->Start();
  for (int i = 0; i < 2; ++i) {
    EXPECT_TRUE(tickets[i].Wait().ok());
  }
  ServerStats stats = (*server)->stats();
  EXPECT_EQ(stats.submitted, 5u);
  EXPECT_EQ(stats.admitted, 2u);
  EXPECT_EQ(stats.rejected_overload, 3u);
  EXPECT_EQ(stats.served, 2u);
  EXPECT_EQ(stats.peak_queue_depth, 2u);
}

TEST(ServerTest, ShutdownDrainsBacklogThenRejectsUnavailable) {
  Workload w = MakeWorkload();
  ASSERT_FALSE(w.queries.empty());
  ServerOptions options;
  options.num_replicas = 2;
  options.defer_workers = true;
  auto server = Server::Create(w.g, w.assignment, 6, options);
  ASSERT_TRUE(server.ok());

  QueryOptions query;
  query.algorithm = Algorithm::kDgpm;
  std::vector<ServerTicket> tickets;
  for (int i = 0; i < 6; ++i) {
    tickets.push_back(
        (*server)->Submit(w.queries[i % w.queries.size()], query));
  }
  // Graceful shutdown: the deferred workers are started to drain the
  // backlog; every accepted query completes.
  (*server)->Shutdown();
  for (auto& ticket : tickets) {
    EXPECT_TRUE(ticket.Wait().ok());
  }
  ServerStats stats = (*server)->stats();
  EXPECT_EQ(stats.served, 6u);

  // Post-shutdown submissions reject with Unavailable, via both paths.
  auto late = (*server)->Submit(w.queries[0], query);
  EXPECT_EQ(late.Wait().status().code(), StatusCode::kUnavailable);
  EXPECT_EQ((*server)->Match(w.queries[0], query).status().code(),
            StatusCode::kUnavailable);
  stats = (*server)->stats();
  EXPECT_EQ(stats.rejected_shutdown, 2u);
  EXPECT_EQ(stats.served, 6u);

  // Shutdown is idempotent.
  (*server)->Shutdown();
}

TEST(ServerTest, QueuedDeadlineExpiresWithoutRunning) {
  Workload w = MakeWorkload();
  ASSERT_FALSE(w.queries.empty());
  ServerOptions options;
  options.num_replicas = 1;
  options.defer_workers = true;
  auto server = Server::Create(w.g, w.assignment, 6, options);
  ASSERT_TRUE(server.ok());

  QueryOptions query;
  query.algorithm = Algorithm::kDgpm;
  SubmitOptions tight;
  tight.deadline_seconds = 1e-4;
  ServerTicket doomed = (*server)->Submit(w.queries[0], query, tight);
  ServerTicket healthy = (*server)->Submit(w.queries[0], query);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  (*server)->Start();

  EXPECT_EQ(doomed.Wait().status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(healthy.Wait().ok());
  ServerStats stats = (*server)->stats();
  EXPECT_EQ(stats.expired, 1u);
  EXPECT_EQ(stats.served, 1u);
  EXPECT_EQ(stats.failed, 0u);
}

TEST(ServerTest, ExactPatternMemoizationIsBitIdentical) {
  Workload w = MakeWorkload();
  ASSERT_FALSE(w.queries.empty());
  ServerOptions options;
  options.engine = dgs::testing::TestEngineOptions();
  options.num_replicas = 1;
  options.cache = CacheMode::kFull;
  auto server = Server::Create(w.g, w.assignment, 6, options);
  ASSERT_TRUE(server.ok());

  QueryOptions query;
  query.algorithm = Algorithm::kDgpm;
  auto cold = (*server)->Match(w.queries[0], query);
  auto warm = (*server)->Match(w.queries[0], query);
  ASSERT_TRUE(cold.ok());
  ASSERT_TRUE(warm.ok());
  ExpectSameOutcome(*warm, *cold, "memo hit vs cold run");

  ServerStats stats = (*server)->stats();
  EXPECT_EQ(stats.cache_result_misses, 1u);
  EXPECT_EQ(stats.cache_result_hits, 1u);
  EXPECT_GT(stats.cache_result_bytes, 0u);
  // The hit contributes the memoized accounting to the cumulative stats.
  EXPECT_EQ(stats.cumulative.data_bytes, 2 * cold->stats.data_bytes);

  // Different outcome-relevant options do not alias in the memo.
  QueryOptions boolean = query;
  boolean.boolean_only = true;
  ASSERT_TRUE((*server)->Match(w.queries[0], boolean).ok());
  stats = (*server)->stats();
  EXPECT_EQ(stats.cache_result_misses, 2u);
}

TEST(ServerTest, FailedQueriesAreCountedAndDoNotPoisonTheServer) {
  Workload w = MakeWorkload();
  ASSERT_FALSE(w.queries.empty());
  auto server = Server::Create(w.g, w.assignment, 6, ServerOptions{});
  ASSERT_TRUE(server.ok());

  // Invalid pattern.
  Pattern empty;
  EXPECT_EQ((*server)->Match(empty).status().code(),
            StatusCode::kInvalidArgument);
  // Structural precondition failure (cyclic web graph is no tree).
  QueryOptions tree;
  tree.algorithm = Algorithm::kDgpmTree;
  EXPECT_EQ((*server)->Match(w.queries[0], tree).status().code(),
            StatusCode::kFailedPrecondition);
  // The deployment still serves.
  QueryOptions query;
  query.algorithm = Algorithm::kDgpm;
  EXPECT_TRUE((*server)->Match(w.queries[0], query).ok());

  ServerStats stats = (*server)->stats();
  EXPECT_EQ(stats.failed, 2u);
  EXPECT_EQ(stats.served, 1u);
}

TEST(ServerTest, PriorityPolicyServesDefaultPriorityShortestJobFirst) {
  // End-to-end smoke of the kPriority path: everything completes correctly
  // regardless of dispatch order (ordering itself is asserted in
  // admission_test). EstimateCost must price queries from the candidate
  // sets.
  Workload w = MakeWorkload();
  ASSERT_GE(w.queries.size(), 2u);
  ServerOptions options;
  options.policy = AdmissionPolicy::kPriority;
  options.cache = CacheMode::kCandidates;
  options.num_replicas = 1;
  options.defer_workers = true;
  auto server = Server::Create(w.g, w.assignment, 6, options);
  ASSERT_TRUE(server.ok());
  EXPECT_GT((*server)->EstimateCost(w.queries[0]), 0u);

  QueryOptions query;
  query.algorithm = Algorithm::kDgpm;
  std::vector<ServerTicket> tickets;
  for (const Pattern& q : w.queries) {
    tickets.push_back((*server)->Submit(q, query));
  }
  SubmitOptions urgent;
  urgent.priority = 1000;
  tickets.push_back((*server)->Submit(w.queries[0], query, urgent));
  (*server)->Start();
  for (auto& ticket : tickets) EXPECT_TRUE(ticket.Wait().ok());
  ServerStats stats = (*server)->stats();
  EXPECT_EQ(stats.served, w.queries.size() + 1);
  EXPECT_GT(stats.cache_label_misses, 0u);
}

TEST(ServerTest, SubmitBatchPreservesStreamOrderOfTickets) {
  Workload w = MakeWorkload();
  ASSERT_GE(w.queries.size(), 2u);
  auto server = Server::Create(w.g, w.assignment, 6, ServerOptions{});
  ASSERT_TRUE(server.ok());
  QueryOptions query;
  query.algorithm = Algorithm::kDgpm;

  auto reference_engine = Engine::Create(w.g, w.assignment, 6);
  ASSERT_TRUE(reference_engine.ok());

  std::vector<ServerTicket> tickets = (*server)->SubmitBatch(w.queries, query);
  ASSERT_EQ(tickets.size(), w.queries.size());
  for (size_t qi = 0; qi < tickets.size(); ++qi) {
    auto served = tickets[qi].Wait();
    auto direct = (*reference_engine)->Match(w.queries[qi], query);
    ASSERT_TRUE(served.ok());
    ASSERT_TRUE(direct.ok());
    ExpectSameOutcome(*served, *direct, "batch q" + std::to_string(qi));
  }
}

TEST(ServerTest, SharedStructureFactsComputeOnce) {
  SharedStructureFacts facts;
  int forest_calls = 0;
  EXPECT_TRUE(facts.Forest([&] {
    ++forest_calls;
    return true;
  }));
  EXPECT_TRUE(facts.Forest([&] {
    ++forest_calls;
    return false;  // must not be called
  }));
  EXPECT_EQ(forest_calls, 1);

  int acyclic_calls = 0;
  EXPECT_FALSE(facts.Acyclic([&] {
    ++acyclic_calls;
    return false;
  }));
  EXPECT_FALSE(facts.Acyclic([&] {
    ++acyclic_calls;
    return true;
  }));
  EXPECT_EQ(acyclic_calls, 1);
}

// kAuto on a tree deployment dispatches to dGPMt on every replica via the
// shared facts, and concurrent serving stays identical to the sequential
// engine.
TEST(ServerTest, AutoDispatchSharesStructureFactsAcrossReplicas) {
  Rng rng(77);
  Graph tree = RandomTree(300, 3, rng);
  auto part = TreePartition(tree, 4);
  ASSERT_TRUE(part.ok());
  Pattern chain(MakeGraph({0, 1, 2}, {{0, 1}, {1, 2}}));

  auto engine = Engine::Create(tree, *part, 4);
  ASSERT_TRUE(engine.ok());
  auto reference = (*engine)->Match(chain, QueryOptions{});  // kAuto
  ASSERT_TRUE(reference.ok());
  EXPECT_GT(reference->counters.equation_units.load(), 0u);  // dGPMt ran

  ServerOptions options;
  options.num_replicas = 2;
  auto server = Server::Create(tree, *part, 4, options);
  ASSERT_TRUE(server.ok());
  std::vector<std::thread> clients;
  std::vector<StatusOr<DistOutcome>> outcomes(4, Status::Internal("unset"));
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back(
        [&, c] { outcomes[c] = (*server)->Match(chain, QueryOptions{}); });
  }
  for (auto& t : clients) t.join();
  for (int c = 0; c < 4; ++c) {
    ASSERT_TRUE(outcomes[c].ok());
    ExpectSameOutcome(*outcomes[c], *reference,
                      "auto tree client " + std::to_string(c));
  }
}

// The fragmentation is borrowed const and shared zero-copy: replicas of a
// Server and an independent Engine over the same Fragmentation agree.
TEST(ServerTest, BorrowedFragmentationSharedAcrossServerAndEngine) {
  Workload w = MakeWorkload();
  ASSERT_FALSE(w.queries.empty());
  auto frag = Fragmentation::Create(w.g, w.assignment, 6);
  ASSERT_TRUE(frag.ok());

  ServerOptions options;
  options.num_replicas = 2;
  auto server = Server::Create(w.g, &*frag, options);
  ASSERT_TRUE(server.ok());
  EXPECT_EQ(&(*server)->fragmentation(), &*frag);

  auto engine = Engine::Create(w.g, &*frag, EngineOptions{});
  ASSERT_TRUE(engine.ok());
  QueryOptions query;
  query.algorithm = Algorithm::kDgpm;
  auto served = (*server)->Match(w.queries[0], query);
  auto direct = (*engine)->Match(w.queries[0], query);
  ASSERT_TRUE(served.ok());
  ASSERT_TRUE(direct.ok());
  ExpectSameOutcome(*served, *direct, "borrowed fragmentation");
  EXPECT_TRUE(served->result == ComputeSimulation(w.queries[0], w.g));
}


TEST(ServerTest, StatsSnapshotIsConsistentUnderConcurrentScrapes) {
  Workload w = MakeWorkload();
  ASSERT_GE(w.queries.size(), 2u);
  ServerOptions options;
  options.num_replicas = 2;
  options.engine.num_threads = 1;
  options.cache = CacheMode::kOff;
  options.max_queue = 4;  // small queue so some submits shed under load
  auto server = Server::Create(w.g, w.assignment, 6, options);
  ASSERT_TRUE(server.ok());

  // Hammer: client threads submit while scraper threads snapshot. Every
  // snapshot — taken mid-flight — must satisfy the documented cross-field
  // invariants; a torn read (counters from different instants) would
  // violate them.
  std::atomic<bool> stop{false};
  std::atomic<int> violations{0};
  std::vector<std::thread> scrapers;
  for (int s = 0; s < 2; ++s) {
    scrapers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        const ServerStats stats = (*server)->StatsSnapshot();
        const uint64_t completed = stats.served + stats.failed +
                                   stats.expired + stats.rejected_overload +
                                   stats.rejected_shutdown;
        if (stats.served > stats.submitted) ++violations;
        if (stats.admitted > stats.submitted) ++violations;
        if (completed > stats.submitted) ++violations;
        if (stats.retry_successes > stats.retries) ++violations;
        if (stats.degraded_rejections > stats.rejected_overload) ++violations;
        if (stats.latency.e2e_served.count() > stats.served) ++violations;
        if (stats.latency.queue_wait.count() > stats.admitted) ++violations;
      }
    });
  }
  std::vector<std::thread> clients;
  for (int c = 0; c < 3; ++c) {
    clients.emplace_back([&] {
      for (int round = 0; round < 8; ++round) {
        std::vector<ServerTicket> tickets;
        for (const Pattern& q : w.queries) {
          tickets.push_back((*server)->Submit(q));
        }
        for (auto& t : tickets) (void)t.Wait();
      }
    });
  }
  for (auto& t : clients) t.join();
  stop = true;
  for (auto& t : scrapers) t.join();
  EXPECT_EQ(violations.load(), 0);

  // Quiesced: the latency histograms are populated and exactly partition
  // the completions they track.
  (*server)->Shutdown();
  const ServerStats stats = (*server)->StatsSnapshot();
  EXPECT_GT(stats.served, 0u);
  EXPECT_EQ(stats.latency.e2e_served.count() +
                stats.latency.e2e_cache_hit.count(),
            stats.served);
  EXPECT_EQ(stats.latency.e2e_failed.count(), stats.failed);
  EXPECT_GE(stats.latency.queue_wait.count(), stats.served - stats.latency.e2e_cache_hit.count());
  EXPECT_GT(stats.latency.e2e_served.ValueAtQuantile(0.99), 0u);
  // p50 <= p95 <= p99 on a populated histogram.
  const auto& h = stats.latency.e2e_served;
  EXPECT_LE(h.ValueAtQuantile(0.5), h.ValueAtQuantile(0.95));
  EXPECT_LE(h.ValueAtQuantile(0.95), h.ValueAtQuantile(0.99));
}

TEST(ServerTest, RegisterMetricsExposesLintCleanMonotoneCounters) {
  Workload w = MakeWorkload();
  ASSERT_GE(w.queries.size(), 1u);
  ServerOptions options;
  options.num_replicas = 1;
  auto server = Server::Create(w.g, w.assignment, 6, options);
  ASSERT_TRUE(server.ok());

  obs::MetricsRegistry registry;
  (*server)->RegisterMetrics(&registry);
  ASSERT_TRUE(registry.Lint().ok()) << registry.Lint().ToString();
  const std::string before = registry.PrometheusText();
  ASSERT_TRUE((*server)->Match(w.queries[0]).ok());
  const std::string after = registry.PrometheusText();
  const Status mono = obs::MetricsRegistry::CheckMonotonic(before, after);
  EXPECT_TRUE(mono.ok()) << mono.ToString();
  // The query moved the counters the scrape reads from StatsSnapshot().
  EXPECT_NE(after.find("dgs_server_served_total 1"), std::string::npos)
      << after;
}

}  // namespace
}  // namespace dgs
