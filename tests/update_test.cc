// The dynamic-update pipeline (dyn/update.h), standing-query subscriptions
// (dyn/subscription.h), and their Server integration (serve/server.h).
//
// The load-bearing contract: after ANY committed update sequence, every
// subscription's result — snapshot, and snapshot reconstructed by replaying
// deltas — is bit-identical to a from-scratch evaluation on the mutated
// graph, at every executor width and over every transport backend; queries
// served after a commit see exactly the new graph (versioned redeploy +
// label-pair cache invalidation). A poisoned update run commits NOTHING:
// the version, the adjacency, and every subscription are untouched, and
// resubmitting the same batch succeeds. The chaos suites are named
// ChaosUpdate* so the CI DGS_FAULT_SEED sweep picks them up.

#include "dyn/update.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "dyn/subscription.h"
#include "graph/generators.h"
#include "partition/partitioner.h"
#include "serve/server.h"
#include "simulation/simulation.h"
#include "test_env.h"

namespace dgs {
namespace {

uint64_t ChaosSeed() {
  const char* s = std::getenv("DGS_FAULT_SEED");
  if (s == nullptr) return 7;
  char* end = nullptr;
  unsigned long long seed = std::strtoull(s, &end, 10);
  if (end == s || *end != '\0') return 7;
  return static_cast<uint64_t>(seed);
}

TEST(UpdateCodecTest, CanonicalizeSortsAndDedupes) {
  UpdateBatch batch;
  batch.inserts = {{5, 1}, {2, 3}, {5, 1}, {0, 9}};
  batch.deletes = {{7, 7}, {1, 2}, {1, 2}};
  CanonicalizeBatch(&batch);
  EXPECT_EQ(batch.inserts,
            (std::vector<std::pair<NodeId, NodeId>>{{0, 9}, {2, 3}, {5, 1}}));
  EXPECT_EQ(batch.deletes,
            (std::vector<std::pair<NodeId, NodeId>>{{1, 2}, {7, 7}}));
}

TEST(UpdateCodecTest, SliceRoundTripsThroughWire) {
  UpdateBatch batch;
  batch.deletes = {{0, 3}, {4, 4}, {1000000, 2}};
  batch.inserts = {{2, 2}, {9, 1}};
  CanonicalizeBatch(&batch);

  Blob blob;
  EncodeUpdateSlice(42, batch, &blob);
  const uint32_t checksum = UpdateChecksum(blob);

  Blob::Reader r(blob);
  uint64_t epoch = 0;
  UpdateBatch decoded;
  ASSERT_TRUE(DecodeUpdateSlice(r, &epoch, &decoded));
  EXPECT_EQ(epoch, 42u);
  EXPECT_EQ(decoded.deletes, batch.deletes);
  EXPECT_EQ(decoded.inserts, batch.inserts);

  // The checksum is content-sensitive: a different batch encodes to a
  // different FNV fingerprint.
  UpdateBatch other = batch;
  other.inserts.push_back({11, 12});
  CanonicalizeBatch(&other);
  Blob blob2;
  EncodeUpdateSlice(42, other, &blob2);
  EXPECT_NE(UpdateChecksum(blob2), checksum);
}

TEST(UpdateCodecTest, TruncatedSliceFailsToDecode) {
  UpdateBatch batch;
  batch.inserts = {{1, 2}, {3, 4}, {5, 6}};
  CanonicalizeBatch(&batch);
  Blob blob;
  EncodeUpdateSlice(7, batch, &blob);
  ASSERT_GT(blob.size(), 1u);
  Blob cut;
  cut.PutBytes(blob.data(), blob.size() - 1);
  Blob::Reader r(cut);
  uint64_t epoch = 0;
  UpdateBatch decoded;
  EXPECT_FALSE(DecodeUpdateSlice(r, &epoch, &decoded));
}

TEST(UpdateCodecTest, SliceBatchRoutesToBothEndpointOwners) {
  // Graph irrelevant to slicing beyond node count/ownership: 6 nodes over
  // 3 sites, round-robin-ish assignment.
  Rng rng(19);
  Graph g = RandomGraph(6, 10, 2, rng);
  std::vector<uint32_t> assignment = {0, 0, 1, 1, 2, 2};
  auto frag = Fragmentation::Create(g, assignment, 3);
  ASSERT_TRUE(frag.ok());

  UpdateBatch batch;
  batch.inserts = {{0, 5}, {2, 3}};  // cross-site and intra-site
  batch.deletes = {{4, 1}};
  CanonicalizeBatch(&batch);
  auto slices = SliceBatchByOwner(batch, *frag);
  ASSERT_EQ(slices.size(), 3u);

  auto has = [](const std::vector<std::pair<NodeId, NodeId>>& edges, NodeId u,
                NodeId v) {
    for (auto e : edges) {
      if (e.first == u && e.second == v) return true;
    }
    return false;
  };
  // (0,5): owner(0)=0, owner(5)=2 — both learn it; site 1 does not.
  EXPECT_TRUE(has(slices[0].inserts, 0, 5));
  EXPECT_TRUE(has(slices[2].inserts, 0, 5));
  EXPECT_FALSE(has(slices[1].inserts, 0, 5));
  // (2,3): both endpoints on site 1 — exactly one slice carries it.
  EXPECT_TRUE(has(slices[1].inserts, 2, 3));
  EXPECT_FALSE(has(slices[0].inserts, 2, 3));
  // (4,1): owner(4)=2, owner(1)=0.
  EXPECT_TRUE(has(slices[2].deletes, 4, 1));
  EXPECT_TRUE(has(slices[0].deletes, 4, 1));
}

TEST(UpdateCodecTest, FaultSpecParsesUpdateClassPrefix) {
  auto plan = ParseFaultSpec("update.drop=0.5,retries=8");
  ASSERT_TRUE(plan.ok());
  EXPECT_DOUBLE_EQ(plan->update.drop, 0.5);
  EXPECT_DOUBLE_EQ(plan->data.drop, 0.0);
  EXPECT_DOUBLE_EQ(plan->control.drop, 0.0);
  EXPECT_EQ(plan->max_retries, 8u);
  // The unprefixed form sets all four classes.
  auto uniform = ParseFaultSpec("drop=0.25");
  ASSERT_TRUE(uniform.ok());
  EXPECT_DOUBLE_EQ(uniform->update.drop, 0.25);
  EXPECT_DOUBLE_EQ(uniform->data.drop, 0.25);
}

// ---------------------------------------------------------------------------
// Server integration.

struct UpdateRig {
  Graph g;
  std::vector<uint32_t> assignment;
  std::vector<Pattern> patterns;
};

UpdateRig MakeUpdateRig() {
  UpdateRig rig;
  Rng rng(2014);
  rig.g = WebGraph(600, 2400, kDefaultAlphabet, rng);
  rig.assignment = PartitionWithBoundaryRatio(rig.g, 4, 0.3, rng);
  for (int i = 0; i < 6 && rig.patterns.size() < 2; ++i) {
    PatternSpec spec;
    spec.num_nodes = 4;
    spec.num_edges = 6;
    spec.kind = PatternKind::kCyclic;
    auto q = ExtractPattern(rig.g, spec, rng);
    if (q.ok()) rig.patterns.push_back(*q);
  }
  return rig;
}

// A deterministic mutation sequence: batches mixing deletions of present
// edges with insertions of fresh ones.
std::vector<UpdateBatch> MakeBatches(const Graph& g, uint64_t seed,
                                     int num_batches, int edits_per_batch) {
  Rng rng(seed);
  DynamicAdjacency mirror(g);
  std::vector<UpdateBatch> batches;
  for (int b = 0; b < num_batches; ++b) {
    UpdateBatch batch;
    auto edges = mirror.ToGraph().Edges();
    for (int i = 0; i < edits_per_batch; ++i) {
      if (rng.UniformInt(2) == 0 && !edges.empty()) {
        batch.deletes.push_back(edges[rng.UniformInt(edges.size())]);
      } else {
        batch.inserts.push_back(
            {static_cast<NodeId>(rng.UniformInt(g.NumNodes())),
             static_cast<NodeId>(rng.UniformInt(g.NumNodes()))});
      }
    }
    CanonicalizeBatch(&batch);
    for (auto e : batch.deletes) mirror.RemoveEdge(e.first, e.second);
    for (auto e : batch.inserts) mirror.InsertEdge(e.first, e.second);
    batches.push_back(std::move(batch));
  }
  return batches;
}

// Batches guaranteed to perturb the match set. Random edits almost never
// flip a match on a web graph — one deleted edge is rarely the LAST support
// for any (u, x) pair — so delta-path tests would pass vacuously on them.
// Instead: delete every out-edge of a node currently matching q (every node
// of a cyclic pattern has an out-edge, so the victim can no longer simulate
// it), then re-insert them on the next batch (its matches reappear), and so
// on alternating. Every batch changes the result.
std::vector<UpdateBatch> MakeEvictionBatches(const Graph& g, const Pattern& q,
                                             int num_batches) {
  DynamicAdjacency mirror(g);
  std::vector<UpdateBatch> batches;
  std::vector<std::pair<NodeId, NodeId>> evicted;
  while (static_cast<int>(batches.size()) < num_batches) {
    UpdateBatch batch;
    if (!evicted.empty()) {
      batch.inserts = evicted;
      evicted.clear();
    } else {
      Graph now = mirror.ToGraph();
      SimulationResult r = ComputeSimulation(q, now);
      bool found = false;
      for (NodeId u = 0; u < static_cast<NodeId>(q.NumNodes()) && !found;
           ++u) {
        r.FixpointSet(u).ForEachSet([&](size_t x) {
          if (found || now.OutDegree(static_cast<NodeId>(x)) == 0) return;
          for (NodeId y : now.OutNeighbors(static_cast<NodeId>(x))) {
            evicted.push_back({static_cast<NodeId>(x), y});
          }
          found = true;
        });
      }
      if (!found) break;  // empty match set: nothing left to evict
      batch.deletes = evicted;
    }
    CanonicalizeBatch(&batch);
    for (auto e : batch.deletes) mirror.RemoveEdge(e.first, e.second);
    for (auto e : batch.inserts) mirror.InsertEdge(e.first, e.second);
    batches.push_back(std::move(batch));
  }
  return batches;
}

using PairSet = std::set<std::pair<NodeId, NodeId>>;

PairSet ResultPairs(const SimulationResult& r) {
  PairSet pairs;
  for (NodeId u = 0; u < r.NumQueryNodes(); ++u) {
    r.FixpointSet(u).ForEachSet([&](size_t v) {
      pairs.insert({u, static_cast<NodeId>(v)});
    });
  }
  return pairs;
}

// The grid: executor widths {1, 2, 8} × the environment's transport. After
// every committed batch, each subscription's snapshot AND its delta-replayed
// state must equal a from-scratch evaluation on the mutated graph.
TEST(ServerUpdateTest, SubscriptionsAreBitIdenticalToFromScratchAcrossWidths) {
  UpdateRig rig = MakeUpdateRig();
  ASSERT_GE(rig.patterns.size(), 2u);
  // Two eviction batches (guaranteed non-empty deltas for sub 0) followed by
  // a random tail, which also exercises the no-op-tolerant delete path: the
  // tail was generated against the pristine graph, so some of its deletes
  // name edges the evictions already removed.
  auto batches = MakeEvictionBatches(rig.g, rig.patterns[0], 2);
  ASSERT_EQ(batches.size(), 2u);
  for (auto& b : MakeBatches(rig.g, 31, 2, 10)) {
    batches.push_back(std::move(b));
  }

  for (uint32_t threads : {1u, 2u, 8u}) {
    ServerOptions options;
    options.engine = dgs::testing::TestEngineOptions();
    options.engine.num_threads = threads;
    options.num_replicas = 1;
    auto server = Server::Create(rig.g, rig.assignment, 4, options);
    ASSERT_TRUE(server.ok());
    EXPECT_EQ((*server)->graph_version(), 0u);

    std::vector<SubscriptionId> subs;
    std::vector<PairSet> replayed;  // delta-replayed state per subscription
    for (const Pattern& q : rig.patterns) {
      auto id = (*server)->Subscribe(q);
      ASSERT_TRUE(id.ok());
      subs.push_back(*id);
      auto snapshot = (*server)->SubscriptionSnapshot(*id);
      ASSERT_TRUE(snapshot.ok());
      EXPECT_TRUE(*snapshot == ComputeSimulation(q, rig.g));
      replayed.push_back(ResultPairs(*snapshot));
    }
    EXPECT_EQ((*server)->NumSubscriptions(), subs.size());

    DynamicAdjacency mirror(rig.g);
    for (size_t b = 0; b < batches.size(); ++b) {
      auto outcome = (*server)->Update(batches[b]);
      ASSERT_TRUE(outcome.ok()) << "t" << threads << " batch " << b << ": "
                                << outcome.status().ToString();
      EXPECT_EQ(outcome->version, b + 1);
      EXPECT_EQ((*server)->graph_version(), b + 1);
      EXPECT_GT(outcome->stats.update_messages, 0u);
      EXPECT_GT(outcome->stats.update_bytes, 0u);

      for (auto e : batches[b].deletes) mirror.RemoveEdge(e.first, e.second);
      for (auto e : batches[b].inserts) mirror.InsertEdge(e.first, e.second);
      Graph now = mirror.ToGraph();

      for (size_t s = 0; s < subs.size(); ++s) {
        const std::string what = "t" + std::to_string(threads) + " batch " +
                                 std::to_string(b) + " sub " +
                                 std::to_string(s);
        auto snapshot = (*server)->SubscriptionSnapshot(subs[s]);
        ASSERT_TRUE(snapshot.ok()) << what;
        EXPECT_TRUE(*snapshot == ComputeSimulation(rig.patterns[s], now))
            << what;

        bool lagged = true;
        auto deltas = (*server)->PollDeltas(subs[s], &lagged);
        ASSERT_TRUE(deltas.ok()) << what;
        EXPECT_FALSE(lagged) << what;
        for (const SubscriptionDelta& d : *deltas) {
          EXPECT_EQ(d.version, b + 1) << what;
          for (auto p : d.added) EXPECT_TRUE(replayed[s].insert(p).second);
          for (auto p : d.removed) EXPECT_EQ(replayed[s].erase(p), 1u) << what;
        }
        EXPECT_EQ(replayed[s], ResultPairs(*snapshot)) << what;
      }
    }
    (*server)->Shutdown();
    ServerStats stats = (*server)->stats();
    EXPECT_EQ(stats.updates_submitted, batches.size());
    EXPECT_EQ(stats.updates_applied, batches.size());
    EXPECT_EQ(stats.updates_failed, 0u);
    EXPECT_EQ(stats.graph_version, batches.size());
    EXPECT_EQ(stats.subscriptions_created, subs.size());
    // The eviction batches really moved the match set: deltas flowed.
    EXPECT_GT(stats.sub_deltas_delivered, 0u);
    EXPECT_GT(stats.update_cumulative.update_bytes, 0u);
    // Update traffic is charged on its own ledger, never the query one.
    EXPECT_EQ(stats.cumulative.update_bytes, 0u);
  }
}

// Queries served after a commit run on the NEW graph, and memoized results
// whose label pairs the batch dirtied are invalidated rather than replayed
// stale. (This is the versioned-redeploy + precise-invalidation seam.)
TEST(ServerUpdateTest, QueriesAfterUpdateSeeTheMutatedGraph) {
  UpdateRig rig = MakeUpdateRig();
  ASSERT_FALSE(rig.patterns.empty());
  const Pattern& q = rig.patterns[0];
  QueryOptions query;
  query.algorithm = Algorithm::kDgpm;

  ServerOptions options;
  options.engine = dgs::testing::TestEngineOptions();
  options.num_replicas = 2;
  options.cache = CacheMode::kFull;
  auto server = Server::Create(rig.g, rig.assignment, 4, options);
  ASSERT_TRUE(server.ok());

  auto before = (*server)->Match(q, query);
  ASSERT_TRUE(before.ok());
  EXPECT_TRUE(before->result == ComputeSimulation(q, rig.g));

  // Delete edges the pattern's result depends on (sampled from a match),
  // plus fresh inserts — the batch dirties the pattern's label pairs.
  const auto batches = MakeBatches(rig.g, 77, 1, 16);
  auto outcome = (*server)->Update(batches[0]);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();

  DynamicAdjacency mirror(rig.g);
  for (auto e : batches[0].deletes) mirror.RemoveEdge(e.first, e.second);
  for (auto e : batches[0].inserts) mirror.InsertEdge(e.first, e.second);
  Graph now = mirror.ToGraph();

  // Both replicas must serve the new graph (two queries cannot both hit
  // the same replica's stale engine if rebinding were broken, but loop a
  // few times to touch both).
  for (int i = 0; i < 4; ++i) {
    auto after = (*server)->Match(q, query);
    ASSERT_TRUE(after.ok());
    EXPECT_TRUE(after->result == ComputeSimulation(q, now)) << "query " << i;
  }

  ServerStats stats = (*server)->stats();
  EXPECT_EQ(stats.graph_version, 1u);
  EXPECT_EQ(stats.update_edges_deleted + stats.update_edges_inserted,
            static_cast<uint64_t>(outcome->edges_deleted +
                                  outcome->edges_inserted));
}

TEST(ServerUpdateTest, InvalidBatchesAreRejected) {
  UpdateRig rig = MakeUpdateRig();
  ServerOptions options;
  options.engine = dgs::testing::TestEngineOptions();
  options.num_replicas = 1;
  auto server = Server::Create(rig.g, rig.assignment, 4, options);
  ASSERT_TRUE(server.ok());

  EXPECT_EQ((*server)->Update(UpdateBatch{}).status().code(),
            StatusCode::kInvalidArgument);
  UpdateBatch oob;
  oob.inserts = {{0, static_cast<NodeId>(rig.g.NumNodes())}};
  EXPECT_EQ((*server)->Update(oob).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ((*server)->graph_version(), 0u);
}

TEST(ServerUpdateTest, SubscriptionLifecycleAndUnknownIds) {
  UpdateRig rig = MakeUpdateRig();
  ASSERT_FALSE(rig.patterns.empty());
  ServerOptions options;
  options.engine = dgs::testing::TestEngineOptions();
  options.num_replicas = 1;
  auto server = Server::Create(rig.g, rig.assignment, 4, options);
  ASSERT_TRUE(server.ok());

  auto id = (*server)->Subscribe(rig.patterns[0]);
  ASSERT_TRUE(id.ok());
  EXPECT_EQ((*server)->NumSubscriptions(), 1u);
  EXPECT_TRUE((*server)->Unsubscribe(*id));
  EXPECT_FALSE((*server)->Unsubscribe(*id));  // already gone
  EXPECT_EQ((*server)->NumSubscriptions(), 0u);
  EXPECT_EQ((*server)->SubscriptionSnapshot(*id).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ((*server)->PollDeltas(*id).status().code(), StatusCode::kNotFound);

  // Updates with zero subscribers still commit.
  const auto batches = MakeBatches(rig.g, 5, 1, 6);
  EXPECT_TRUE((*server)->Update(batches[0]).ok());
  EXPECT_EQ((*server)->graph_version(), 1u);

  (*server)->Shutdown();
  EXPECT_EQ((*server)->Subscribe(rig.patterns[0]).status().code(),
            StatusCode::kUnavailable);
  EXPECT_EQ((*server)->Update(batches[0]).status().code(),
            StatusCode::kUnavailable);
}

// An unpolled subscriber with a tiny queue loses oldest deltas, is flagged
// lagged exactly once, and its snapshot still reflects the current graph —
// the documented resynchronization path.
TEST(ServerUpdateTest, OverflowDropsOldestDeltasAndFlagsLagged) {
  UpdateRig rig = MakeUpdateRig();
  ASSERT_FALSE(rig.patterns.empty());
  ServerOptions options;
  options.engine = dgs::testing::TestEngineOptions();
  options.num_replicas = 1;
  auto server = Server::Create(rig.g, rig.assignment, 4, options);
  ASSERT_TRUE(server.ok());

  SubscribeOptions tiny;
  tiny.max_pending_deltas = 2;
  auto id = (*server)->Subscribe(rig.patterns[0], tiny);
  ASSERT_TRUE(id.ok());

  // Every eviction batch changes the result, so every batch produces a
  // non-empty delta; 5 batches overflow a 2-slot queue.
  const auto batches = MakeEvictionBatches(rig.g, rig.patterns[0], 5);
  ASSERT_EQ(batches.size(), 5u);
  DynamicAdjacency mirror(rig.g);
  size_t nonempty = 0;
  for (const auto& batch : batches) {
    auto outcome = (*server)->Update(batch);
    ASSERT_TRUE(outcome.ok());
    nonempty += outcome->deltas_delivered;
    for (auto e : batch.deletes) mirror.RemoveEdge(e.first, e.second);
    for (auto e : batch.inserts) mirror.InsertEdge(e.first, e.second);
  }
  ASSERT_GT(nonempty, 2u) << "workload produced too few deltas to overflow";

  bool lagged = false;
  auto deltas = (*server)->PollDeltas(*id, &lagged);
  ASSERT_TRUE(deltas.ok());
  EXPECT_TRUE(lagged);
  EXPECT_LE(deltas->size(), 2u);
  ServerStats stats = (*server)->stats();
  EXPECT_GT(stats.sub_deltas_dropped, 0u);

  // Snapshot is the resync path: always the full current result.
  auto snapshot = (*server)->SubscriptionSnapshot(*id);
  ASSERT_TRUE(snapshot.ok());
  EXPECT_TRUE(*snapshot ==
              ComputeSimulation(rig.patterns[0], mirror.ToGraph()));

  // The flag reset on poll; a quiet period polls clean.
  bool lagged_again = true;
  auto empty = (*server)->PollDeltas(*id, &lagged_again);
  ASSERT_TRUE(empty.ok());
  EXPECT_FALSE(lagged_again);
  EXPECT_TRUE(empty->empty());
}

// The drop-oldest + lagged-resync contract under a RACING consumer: a
// client thread polls PollDeltas while the main thread commits Update
// batches. TSAN proves the no-race half (this suite is in the TSAN CI
// filter); the assertions prove the protocol half, phrased so they hold
// under EVERY interleaving:
//   - delta versions are strictly increasing across polls, never past the
//     committed watermark;
//   - a version gap is only ever seen on a poll that was flagged lagged;
//   - every delta takes the version-(v-1) result to the version-v result
//     (after a gap the consumer resynchronizes exactly as documented);
//   - the final snapshot equals a from-scratch evaluation on the final
//     graph.
// The first half of the batch stream commits before the poller starts, so
// the 2-slot queue has deterministically overflowed — the lag path is
// guaranteed, not interleaving-dependent.
TEST(ServerUpdateTest, ConcurrentPollsRaceCommitsAndResyncAfterLag) {
  UpdateRig rig = MakeUpdateRig();
  ASSERT_FALSE(rig.patterns.empty());
  const Pattern& q = rig.patterns[0];
  ServerOptions options;
  options.engine = dgs::testing::TestEngineOptions();
  options.num_replicas = 1;
  auto server = Server::Create(rig.g, rig.assignment, 4, options);
  ASSERT_TRUE(server.ok());

  SubscribeOptions tiny;
  tiny.max_pending_deltas = 2;
  auto id = (*server)->Subscribe(q, tiny);
  ASSERT_TRUE(id.ok());

  // Every eviction batch flips the match set, so every version's expected
  // result is precomputable: results[v] = from-scratch at version v.
  const auto batches = MakeEvictionBatches(rig.g, q, 8);
  ASSERT_EQ(batches.size(), 8u);
  std::vector<PairSet> results;
  {
    DynamicAdjacency mirror(rig.g);
    results.push_back(ResultPairs(ComputeSimulation(q, rig.g)));
    for (const auto& batch : batches) {
      for (auto e : batch.deletes) mirror.RemoveEdge(e.first, e.second);
      for (auto e : batch.inserts) mirror.InsertEdge(e.first, e.second);
      results.push_back(ResultPairs(ComputeSimulation(q, mirror.ToGraph())));
    }
  }

  // Phase 1: overflow the queue before the consumer exists.
  const size_t prefix = 4;
  for (size_t b = 0; b < prefix; ++b) {
    auto outcome = (*server)->Update(batches[b]);
    ASSERT_TRUE(outcome.ok()) << "batch " << b;
  }

  // Phase 2: the consumer races the remaining commits.
  struct Poll {
    bool lagged = false;
    std::vector<SubscriptionDelta> deltas;
  };
  std::vector<Poll> polls;
  std::atomic<bool> done{false};
  std::thread poller([&] {
    for (;;) {
      const bool last = done.load(std::memory_order_acquire);
      Poll poll;
      auto deltas = (*server)->PollDeltas(*id, &poll.lagged);
      EXPECT_TRUE(deltas.ok()) << deltas.status().ToString();
      if (!deltas.ok()) return;
      poll.deltas = std::move(*deltas);
      polls.push_back(std::move(poll));
      if (last) return;  // one guaranteed poll after the final commit
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  for (size_t b = prefix; b < batches.size(); ++b) {
    auto outcome = (*server)->Update(batches[b]);
    EXPECT_TRUE(outcome.ok()) << "batch " << b;
  }
  done.store(true, std::memory_order_release);
  poller.join();

  // Protocol validation over the recorded interleaving.
  uint64_t last_version = 0;
  bool saw_gap = false;
  PairSet replayed = results[0];
  for (size_t p = 0; p < polls.size(); ++p) {
    for (const SubscriptionDelta& d : polls[p].deltas) {
      ASSERT_GE(d.version, 1u);
      ASSERT_LE(d.version, batches.size());
      ASSERT_GT(d.version, last_version) << "poll " << p;
      if (d.version != last_version + 1) {
        // Oldest deltas were dropped: this poll must carry the flag, and
        // the consumer resynchronizes (here: to the known v-1 state; a
        // real client would use SubscriptionSnapshot).
        EXPECT_TRUE(polls[p].lagged) << "silent gap at poll " << p;
        saw_gap = true;
        replayed = results[d.version - 1];
      }
      for (auto pair : d.added) {
        EXPECT_TRUE(replayed.insert(pair).second) << "v" << d.version;
      }
      for (auto pair : d.removed) {
        EXPECT_EQ(replayed.erase(pair), 1u) << "v" << d.version;
      }
      EXPECT_EQ(replayed, results[d.version]) << "v" << d.version;
      last_version = d.version;
    }
  }
  // The pre-poller prefix overflowed the 2-slot queue, so the first
  // delivered version is > 1: the gap (and the flag) really happened.
  EXPECT_TRUE(saw_gap);

  // Resync endpoint: the snapshot is the final from-scratch result.
  auto snapshot = (*server)->SubscriptionSnapshot(*id);
  ASSERT_TRUE(snapshot.ok());
  EXPECT_TRUE(ResultPairs(*snapshot) == results[batches.size()]);

  (*server)->Shutdown();
  ServerStats stats = (*server)->stats();
  EXPECT_EQ(stats.updates_applied, batches.size());
  EXPECT_GT(stats.sub_deltas_dropped, 0u);
}

// A poisoned update run commits NOTHING — version, adjacency, and every
// subscription stay at the pre-batch state — and resubmitting the same
// batch succeeds once the fault budget is spent. Named Chaos* for the CI
// DGS_FAULT_SEED sweep.
TEST(ChaosUpdateTest, PoisonedUpdateIsNeverHalfAppliedAndIsResubmittable) {
  UpdateRig rig = MakeUpdateRig();
  ASSERT_FALSE(rig.patterns.empty());
  ServerOptions options;
  options.engine = dgs::testing::TestEngineOptions();
  options.num_replicas = 1;
  // One truncation aimed at the update class: the first update run is
  // poisoned DataLoss; queries and later updates are untouched.
  options.engine.faults.update.truncate = 1.0;
  options.engine.faults.max_faults = 1;
  options.engine.faults.seed = ChaosSeed();
  auto server = Server::Create(rig.g, rig.assignment, 4, options);
  ASSERT_TRUE(server.ok());

  auto id = (*server)->Subscribe(rig.patterns[0]);
  ASSERT_TRUE(id.ok());
  auto before = (*server)->SubscriptionSnapshot(*id);
  ASSERT_TRUE(before.ok());

  const auto batches = MakeBatches(rig.g, 41, 1, 10);
  auto poisoned = (*server)->Update(batches[0]);
  ASSERT_FALSE(poisoned.ok());
  EXPECT_EQ(poisoned.status().code(), StatusCode::kDataLoss);

  // Nothing moved: no version bump, no delta, identical snapshot.
  EXPECT_EQ((*server)->graph_version(), 0u);
  auto unchanged = (*server)->SubscriptionSnapshot(*id);
  ASSERT_TRUE(unchanged.ok());
  EXPECT_TRUE(*unchanged == *before);
  auto deltas = (*server)->PollDeltas(*id);
  ASSERT_TRUE(deltas.ok());
  EXPECT_TRUE(deltas->empty());

  // The same batch, resubmitted, commits cleanly (idempotent epochs; the
  // budgeted fault is spent).
  auto retried = (*server)->Update(batches[0]);
  ASSERT_TRUE(retried.ok()) << retried.status().ToString();
  EXPECT_EQ(retried->version, 1u);

  DynamicAdjacency mirror(rig.g);
  for (auto e : batches[0].deletes) mirror.RemoveEdge(e.first, e.second);
  for (auto e : batches[0].inserts) mirror.InsertEdge(e.first, e.second);
  auto snapshot = (*server)->SubscriptionSnapshot(*id);
  ASSERT_TRUE(snapshot.ok());
  EXPECT_TRUE(*snapshot ==
              ComputeSimulation(rig.patterns[0], mirror.ToGraph()));

  ServerStats stats = (*server)->stats();
  EXPECT_EQ(stats.updates_submitted, 2u);
  EXPECT_EQ(stats.updates_applied, 1u);
  EXPECT_EQ(stats.updates_failed, 1u);
}

// Dropped-then-retransmitted update frames are invisible: the commit and
// every subscription delta are bit-identical to the fault-free run.
TEST(ChaosUpdateTest, RecoveredUpdateChaosCommitsIdentically) {
  UpdateRig rig = MakeUpdateRig();
  ASSERT_FALSE(rig.patterns.empty());
  // Eviction batches: the per-batch states genuinely move, so agreement
  // between the clean and chaos runs is not vacuous.
  const auto batches = MakeEvictionBatches(rig.g, rig.patterns[0], 2);
  ASSERT_EQ(batches.size(), 2u);

  auto run = [&](FaultPlan faults, std::vector<PairSet>* states,
                 uint64_t* update_bytes) {
    ServerOptions options;
    options.engine = dgs::testing::TestEngineOptions();
    options.num_replicas = 1;
    options.engine.faults = faults;
    auto server = Server::Create(rig.g, rig.assignment, 4, options);
    ASSERT_TRUE(server.ok());
    auto id = (*server)->Subscribe(rig.patterns[0]);
    ASSERT_TRUE(id.ok());
    for (const auto& batch : batches) {
      auto outcome = (*server)->Update(batch);
      ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
      auto snapshot = (*server)->SubscriptionSnapshot(*id);
      ASSERT_TRUE(snapshot.ok());
      states->push_back(ResultPairs(*snapshot));
    }
    *update_bytes = (*server)->stats().update_cumulative.update_bytes;
  };

  std::vector<PairSet> clean_states;
  uint64_t clean_bytes = 0;
  run(FaultPlan{}, &clean_states, &clean_bytes);

  FaultPlan lossy;
  lossy.update.drop = 0.4;
  lossy.update.duplicate = 0.2;
  lossy.update.reorder = 0.3;
  lossy.max_retries = 16;
  lossy.seed = ChaosSeed();
  std::vector<PairSet> chaos_states;
  uint64_t chaos_bytes = 0;
  run(lossy, &chaos_states, &chaos_bytes);

  ASSERT_EQ(clean_states.size(), chaos_states.size());
  for (size_t i = 0; i < clean_states.size(); ++i) {
    EXPECT_EQ(clean_states[i], chaos_states[i]) << "batch " << i;
  }
  // Charged accounting is fault-invariant (retransmits live in FaultStats).
  EXPECT_EQ(clean_bytes, chaos_bytes);
}

}  // namespace
}  // namespace dgs
