// Determinism of the parallel cluster runtime (runtime/cluster.h).
//
// The contract: for ANY ClusterOptions::num_threads value, a run produces
// the same SimulationResult and bit-identical RunStats message/byte
// accounting as the num_threads == 1 sequential reference, and repeated
// runs at the same width agree with each other. Exercised on dGPM, dGPMd,
// dGPMt and dMes over generated workloads.

#include <gtest/gtest.h>

#include "core/api.h"
#include "graph/generators.h"
#include "partition/partitioner.h"
#include "test_env.h"

namespace dgs {
namespace {

struct Fingerprint {
  SimulationResult result;
  uint64_t data_bytes, control_bytes, result_bytes;
  uint64_t data_messages, control_messages, result_messages;
  uint32_t rounds;
  uint64_t vars_shipped, push_count, equation_units, recomputations;

  explicit Fingerprint(const DistOutcome& o)
      : result(o.result),
        data_bytes(o.stats.data_bytes),
        control_bytes(o.stats.control_bytes),
        result_bytes(o.stats.result_bytes),
        data_messages(o.stats.data_messages),
        control_messages(o.stats.control_messages),
        result_messages(o.stats.result_messages),
        rounds(o.stats.rounds),
        vars_shipped(o.counters.vars_shipped),
        push_count(o.counters.push_count),
        equation_units(o.counters.equation_units),
        recomputations(o.counters.recomputations) {}
};

void ExpectSameFingerprint(const Fingerprint& a, const Fingerprint& b,
                           const char* what, uint32_t threads) {
  SCOPED_TRACE(::testing::Message() << what << " num_threads=" << threads);
  EXPECT_TRUE(a.result == b.result);
  EXPECT_EQ(a.data_bytes, b.data_bytes);
  EXPECT_EQ(a.control_bytes, b.control_bytes);
  EXPECT_EQ(a.result_bytes, b.result_bytes);
  EXPECT_EQ(a.data_messages, b.data_messages);
  EXPECT_EQ(a.control_messages, b.control_messages);
  EXPECT_EQ(a.result_messages, b.result_messages);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.vars_shipped, b.vars_shipped);
  EXPECT_EQ(a.push_count, b.push_count);
  EXPECT_EQ(a.equation_units, b.equation_units);
  EXPECT_EQ(a.recomputations, b.recomputations);
}

void CheckAcrossThreadCounts(const Graph& g,
                             const std::vector<uint32_t>& assignment,
                             uint32_t sites, const Pattern& q,
                             Algorithm algorithm, const char* what) {
  DistOptions options;
  options.algorithm = algorithm;
  options.num_threads = 1;
  // The CI transport job re-runs the whole sweep over the socket backend:
  // width-invariance must hold there too, and the fingerprints are
  // backend-invariant by the transport contract.
  options.transport = dgs::testing::EnvTransport();
  auto reference = DistributedMatch(g, assignment, sites, q, options);
  ASSERT_TRUE(reference.ok()) << what;
  Fingerprint ref(*reference);

  for (uint32_t threads : {1u, 2u, 8u}) {
    options.num_threads = threads;
    // Two runs per width: parallel results must also be stable run-to-run.
    for (int repeat = 0; repeat < 2; ++repeat) {
      auto outcome = DistributedMatch(g, assignment, sites, q, options);
      ASSERT_TRUE(outcome.ok()) << what;
      ExpectSameFingerprint(ref, Fingerprint(*outcome), what, threads);
    }
  }
}

TEST(RuntimeDeterminismTest, DgpmOnWebGraph) {
  Rng rng(2014);
  Graph g = WebGraph(4000, 20000, kDefaultAlphabet, rng);
  auto assignment = PartitionWithBoundaryRatio(g, 8, 0.25, rng);
  PatternSpec spec;
  spec.num_nodes = 5;
  spec.num_edges = 10;
  spec.kind = PatternKind::kCyclic;
  auto q = ExtractPattern(g, spec, rng);
  ASSERT_TRUE(q.ok());
  CheckAcrossThreadCounts(g, assignment, 8, *q, Algorithm::kDgpm, "dGPM");
}

TEST(RuntimeDeterminismTest, DgpmNoOptOnWebGraph) {
  Rng rng(7);
  Graph g = WebGraph(1500, 7500, kDefaultAlphabet, rng);
  auto assignment = PartitionWithBoundaryRatio(g, 4, 0.3, rng);
  PatternSpec spec;
  spec.kind = PatternKind::kCyclic;
  auto q = ExtractPattern(g, spec, rng);
  ASSERT_TRUE(q.ok());
  CheckAcrossThreadCounts(g, assignment, 4, *q, Algorithm::kDgpmNoOpt,
                          "dGPMNOpt");
}

TEST(RuntimeDeterminismTest, DgpmDagOnCitationDag) {
  Rng rng(99);
  Graph g = CitationDag(3000, 12000, kDefaultAlphabet, rng);
  auto assignment = PartitionWithBoundaryRatio(g, 8, 0.25, rng);
  PatternSpec spec;
  spec.num_nodes = 5;
  spec.num_edges = 8;
  spec.kind = PatternKind::kDag;
  auto q = ExtractPattern(g, spec, rng);
  ASSERT_TRUE(q.ok());
  CheckAcrossThreadCounts(g, assignment, 8, *q, Algorithm::kDgpmDag, "dGPMd");
}

TEST(RuntimeDeterminismTest, DgpmTreeOnRandomTree) {
  Rng rng(5);
  Graph g = RandomTree(3000, kDefaultAlphabet, rng);
  auto assignment = PartitionWithBoundaryRatio(g, 8, 0.25, rng);
  PatternSpec spec;
  spec.num_nodes = 4;
  spec.num_edges = 5;
  spec.kind = PatternKind::kDag;
  auto q = ExtractPattern(g, spec, rng);
  ASSERT_TRUE(q.ok());
  CheckAcrossThreadCounts(g, assignment, 8, *q, Algorithm::kDgpmTree,
                          "dGPMt");
}

TEST(RuntimeDeterminismTest, DMesOnWebGraph) {
  Rng rng(31);
  Graph g = WebGraph(1500, 7500, kDefaultAlphabet, rng);
  auto assignment = PartitionWithBoundaryRatio(g, 4, 0.25, rng);
  PatternSpec spec;
  spec.kind = PatternKind::kCyclic;
  auto q = ExtractPattern(g, spec, rng);
  ASSERT_TRUE(q.ok());
  CheckAcrossThreadCounts(g, assignment, 4, *q, Algorithm::kDMes, "dMes");
}

// Match and disHHK resolve centrally: their assembling coordinator now
// hands the runtime's pool to ComputeSimulation (parallel counter build AND
// parallel refinement drain), so they join the cross-width fingerprint
// check. The graph is sized above kParallelRefineMinNodes so the sharded
// drain actually engages at widths > 1.
TEST(RuntimeDeterminismTest, MatchOnWebGraph) {
  Rng rng(43);
  Graph g = WebGraph(6000, 30000, kDefaultAlphabet, rng);
  auto assignment = PartitionWithBoundaryRatio(g, 4, 0.25, rng);
  PatternSpec spec;
  spec.num_nodes = 5;
  spec.num_edges = 10;
  spec.kind = PatternKind::kCyclic;
  auto q = ExtractPattern(g, spec, rng);
  ASSERT_TRUE(q.ok());
  CheckAcrossThreadCounts(g, assignment, 4, *q, Algorithm::kMatch, "Match");
}

TEST(RuntimeDeterminismTest, DisHhkOnWebGraph) {
  Rng rng(47);
  Graph g = WebGraph(6000, 30000, kDefaultAlphabet, rng);
  auto assignment = PartitionWithBoundaryRatio(g, 4, 0.25, rng);
  PatternSpec spec;
  spec.num_nodes = 5;
  spec.num_edges = 10;
  spec.kind = PatternKind::kCyclic;
  auto q = ExtractPattern(g, spec, rng);
  ASSERT_TRUE(q.ok());
  CheckAcrossThreadCounts(g, assignment, 4, *q, Algorithm::kDisHhk, "disHHK");
}

// num_threads = 0 resolves to "all hardware threads" and must still agree.
TEST(RuntimeDeterminismTest, HardwareWidthMatchesReference) {
  Rng rng(13);
  Graph g = WebGraph(1000, 5000, kDefaultAlphabet, rng);
  auto assignment = PartitionWithBoundaryRatio(g, 4, 0.25, rng);
  PatternSpec spec;
  spec.kind = PatternKind::kCyclic;
  auto q = ExtractPattern(g, spec, rng);
  ASSERT_TRUE(q.ok());

  DistOptions options;
  options.num_threads = 1;
  options.transport = dgs::testing::EnvTransport();
  auto ref = DistributedMatch(g, assignment, 4, *q, options);
  ASSERT_TRUE(ref.ok());
  options.num_threads = 0;
  auto hw = DistributedMatch(g, assignment, 4, *q, options);
  ASSERT_TRUE(hw.ok());
  ExpectSameFingerprint(Fingerprint(*ref), Fingerprint(*hw), "hw-width", 0);
}

// The parallel simulation kernel agrees with the sequential one.
TEST(RuntimeDeterminismTest, ParallelKernelMatchesSequential) {
  Rng rng(17);
  Graph g = WebGraph(20000, 100000, kDefaultAlphabet, rng);
  PatternSpec spec;
  spec.num_nodes = 5;
  spec.num_edges = 10;
  spec.kind = PatternKind::kCyclic;
  auto q = ExtractPattern(g, spec, rng);
  ASSERT_TRUE(q.ok());

  SimulationOptions sequential;
  auto expected = ComputeSimulation(*q, g, sequential);
  for (uint32_t threads : {2u, 8u}) {
    SimulationOptions parallel;
    parallel.num_threads = threads;
    EXPECT_TRUE(ComputeSimulation(*q, g, parallel) == expected)
        << "num_threads=" << threads;
  }
}

}  // namespace
}  // namespace dgs
