#include "graph/io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "graph/generators.h"

namespace dgs {
namespace {

TEST(IoTest, RoundTripSmall) {
  Graph g = MakeGraph({3, 1, 4}, {{0, 1}, {1, 2}, {2, 0}});
  std::stringstream ss;
  WriteGraph(g, ss);
  auto back = ReadGraph(ss);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->NumNodes(), 3u);
  EXPECT_EQ(back->Edges(), g.Edges());
  for (NodeId v = 0; v < 3; ++v) EXPECT_EQ(back->LabelOf(v), g.LabelOf(v));
}

TEST(IoTest, RoundTripGenerated) {
  Rng rng(11);
  Graph g = RandomGraph(500, 2000, 15, rng);
  std::stringstream ss;
  WriteGraph(g, ss);
  auto back = ReadGraph(ss);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->Edges(), g.Edges());
}

TEST(IoTest, RoundTripEmptyGraph) {
  std::stringstream ss;
  WriteGraph(Graph(), ss);
  auto back = ReadGraph(ss);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->NumNodes(), 0u);
  EXPECT_EQ(back->NumEdges(), 0u);
}

TEST(IoTest, BadHeaderRejected) {
  std::stringstream ss("not-a-graph v1\n");
  EXPECT_EQ(ReadGraph(ss).status().code(), StatusCode::kInvalidArgument);
}

TEST(IoTest, WrongVersionRejected) {
  std::stringstream ss("dgs-graph v9\nnodes 0\nlabels\nedges 0\n");
  EXPECT_FALSE(ReadGraph(ss).ok());
}

TEST(IoTest, TruncatedLabelsRejected) {
  std::stringstream ss("dgs-graph v1\nnodes 3\nlabels 1 2\nedges 0\n");
  EXPECT_FALSE(ReadGraph(ss).ok());
}

TEST(IoTest, TruncatedEdgesRejected) {
  std::stringstream ss("dgs-graph v1\nnodes 2\nlabels 0 0\nedges 2\n0 1\n");
  EXPECT_FALSE(ReadGraph(ss).ok());
}

TEST(IoTest, OutOfRangeEdgeRejected) {
  std::stringstream ss("dgs-graph v1\nnodes 2\nlabels 0 0\nedges 1\n0 5\n");
  EXPECT_EQ(ReadGraph(ss).status().code(), StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace dgs
