#include "core/local_engine.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "partition/fragmentation.h"

namespace dgs {
namespace {

TEST(VarKeyTest, RoundTrip) {
  uint64_t key = MakeVarKey(7, 123456);
  EXPECT_EQ(VarKeyQueryNode(key), 7u);
  EXPECT_EQ(VarKeyGlobalNode(key), 123456u);
}

// Single fragment: the engine must reproduce centralized simulation.
TEST(LocalEngineTest, SingleFragmentEqualsCentralized) {
  auto ex = MakeSocialExample();
  auto f = Fragmentation::Create(ex.g, std::vector<uint32_t>(13, 0), 1);
  ASSERT_TRUE(f.ok());
  LocalEngine engine(&f->fragment(0), &ex.q, /*incremental=*/true);
  engine.Initialize();
  auto candidates = engine.LocalCandidates();
  for (NodeId u = 0; u < 4; ++u) {
    std::vector<NodeId> got;
    candidates[u].ForEachSet([&](size_t lv) {
      got.push_back(f->fragment(0).ToGlobal(static_cast<NodeId>(lv)));
    });
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, ex.expected_matches[u]) << "query node " << u;
  }
  EXPECT_EQ(engine.NumUndecidedFrontier(), 0u);
  EXPECT_EQ(engine.recompute_count(), 1u);
}

// The Example 6/7 scenario: initial partial evaluation at S1 must leave the
// boundary-dependent variables undecided and produce no false in-nodes.
TEST(LocalEngineTest, SocialFragmentPartialEvaluation) {
  auto ex = MakeSocialExample();
  auto f = Fragmentation::Create(ex.g, ex.assignment, 3);
  ASSERT_TRUE(f.ok());
  LocalEngine engine(&f->fragment(0), &ex.q, true);
  engine.Initialize();
  // Example 7: yb1 and f1 evaluate to false locally, but neither is an
  // in-node, so nothing ships.
  EXPECT_TRUE(engine.DrainInNodeFalses().empty());
  auto candidates = engine.LocalCandidates();
  const Fragment& frag = f->fragment(0);
  auto global_has = [&](NodeId u, const char* name) {
    for (NodeId v = 0; v < 13; ++v) {
      if (ex.node_names[v] == name) {
        NodeId lv = frag.ToLocal(v);
        return lv != kInvalidNode && candidates[u].Test(lv);
      }
    }
    ADD_FAILURE() << "unknown node " << name;
    return false;
  };
  EXPECT_FALSE(global_has(SocialExample::kYB, "yb1"));  // X(YB,yb1) = false
  EXPECT_FALSE(global_has(SocialExample::kF, "f1"));    // X(F,f1) = false
  EXPECT_TRUE(global_has(SocialExample::kSP, "sp1"));   // undecided => cand.
  EXPECT_TRUE(global_has(SocialExample::kYF, "yf1"));
  // The undecided frontier is exactly the virtual-node variables of
  // Example 6: f4, f2 (label F) and yf2 (label YF) paired with their
  // label-compatible query nodes.
  EXPECT_GT(engine.NumUndecidedFrontier(), 0u);
}

// Example 8: removing edge (f2, sp1) makes X(F,f2) false at S2; applying it
// at S1 must incrementally falsify X(YF,yf1) and ship it.
TEST(LocalEngineTest, IncrementalRefinementExample8) {
  auto ex = MakeSocialExample();
  // Remove edge (f2, sp1): rebuild the graph without it.
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (auto e : ex.g.Edges()) {
    if (!(ex.node_names[e.first] == "f2" && ex.node_names[e.second] == "sp1")) {
      edges.push_back(e);
    }
  }
  std::vector<Label> labels;
  for (NodeId v = 0; v < ex.g.NumNodes(); ++v) labels.push_back(ex.g.LabelOf(v));
  Graph g2 = MakeGraph(labels, edges);
  auto f = Fragmentation::Create(g2, ex.assignment, 3);
  ASSERT_TRUE(f.ok());

  LocalEngine s1(&f->fragment(0), &ex.q, true);
  s1.Initialize();
  s1.DrainInNodeFalses();

  // S2 reports X(F, f2) = false (f2 is global node 7).
  NodeId f2_global = 7;
  ASSERT_EQ(ex.node_names[f2_global], "f2");
  s1.ApplyRemoteFalses({MakeVarKey(SocialExample::kF, f2_global)});
  auto shipped = s1.DrainInNodeFalses();
  // X(YF, yf1) must flip false (yf1's only F-child was f2).
  bool yf1_false = false;
  const Fragment& frag = f->fragment(0);
  for (const auto& fv : shipped) {
    if (ex.node_names[frag.ToGlobal(fv.local_node)] == "yf1" &&
        fv.query_node == SocialExample::kYF) {
      yf1_false = true;
    }
  }
  EXPECT_TRUE(yf1_false);
}

// Example 6's table, symbol for symbol: after partial evaluation, the
// reduced in-node equations at every site are exactly the ones the paper
// lists (variables of virtual nodes only, chains collapsed).
TEST(LocalEngineTest, Example6ReducedEquationsExact) {
  auto ex = MakeSocialExample();
  auto f = Fragmentation::Create(ex.g, ex.assignment, 3);
  ASSERT_TRUE(f.ok());

  auto node_id = [&](const char* name) -> NodeId {
    for (NodeId v = 0; v < ex.g.NumNodes(); ++v) {
      if (ex.node_names[v] == name) return v;
    }
    ADD_FAILURE() << "unknown node " << name;
    return kInvalidNode;
  };
  auto find_entry = [](const ReducedSystem& r,
                       uint64_t key) -> const ReducedEntry* {
    for (const auto& e : r.entries) {
      if (e.key == key) return &e;
    }
    return nullptr;
  };
  const Label YB = SocialExample::kYB, YF = SocialExample::kYF,
              F = SocialExample::kF, SP = SocialExample::kSP;
  (void)YB;

  // F1: X(YF,yf1) = X(F,f2);  X(SP,sp1) = X(YF,yf2) v X(F,f2).
  {
    LocalEngine s1(&f->fragment(0), &ex.q, true);
    s1.Initialize();
    auto li = s1.ReduceInNodeEquations();
    const auto* yf1 = find_entry(li, MakeVarKey(YF, node_id("yf1")));
    ASSERT_NE(yf1, nullptr);
    ASSERT_EQ(yf1->kind, ReducedEntry::kEquation);
    ASSERT_EQ(yf1->groups.size(), 1u);
    EXPECT_EQ(yf1->groups[0],
              (std::vector<uint64_t>{MakeVarKey(F, node_id("f2"))}));
    const auto* sp1 = find_entry(li, MakeVarKey(SP, node_id("sp1")));
    ASSERT_NE(sp1, nullptr);
    ASSERT_EQ(sp1->groups.size(), 1u);
    std::vector<uint64_t> expected = {MakeVarKey(F, node_id("f2")),
                                      MakeVarKey(YF, node_id("yf2"))};
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(sp1->groups[0], expected);
  }
  // F2: X(F,f2) = X(SP,sp1);  X(YF,yf2) = X(YF,yf3).
  {
    LocalEngine s2(&f->fragment(1), &ex.q, true);
    s2.Initialize();
    auto li = s2.ReduceInNodeEquations();
    const auto* f2 = find_entry(li, MakeVarKey(F, node_id("f2")));
    ASSERT_NE(f2, nullptr);
    ASSERT_EQ(f2->groups.size(), 1u);
    EXPECT_EQ(f2->groups[0],
              (std::vector<uint64_t>{MakeVarKey(SP, node_id("sp1"))}));
    const auto* yf2 = find_entry(li, MakeVarKey(YF, node_id("yf2")));
    ASSERT_NE(yf2, nullptr);
    ASSERT_EQ(yf2->groups.size(), 1u);
    EXPECT_EQ(yf2->groups[0],
              (std::vector<uint64_t>{MakeVarKey(YF, node_id("yf3"))}));
  }
  // F3: X(F,f4) = X(YF,yf1); X(SP,sp3) = X(YF,yf1); X(YF,yf3) = X(YF,yf1).
  {
    LocalEngine s3(&f->fragment(2), &ex.q, true);
    s3.Initialize();
    auto li = s3.ReduceInNodeEquations();
    for (auto [label, name] : std::vector<std::pair<Label, const char*>>{
             {F, "f4"}, {SP, "sp3"}, {YF, "yf3"}}) {
      const auto* e = find_entry(li, MakeVarKey(label, node_id(name)));
      ASSERT_NE(e, nullptr) << name;
      ASSERT_EQ(e->kind, ReducedEntry::kEquation) << name;
      ASSERT_EQ(e->groups.size(), 1u) << name;
      EXPECT_EQ(e->groups[0],
                (std::vector<uint64_t>{MakeVarKey(YF, node_id("yf1"))}))
          << name;
    }
  }
}

TEST(LocalEngineTest, NonIncrementalProducesSameFalses) {
  auto ex = MakeSocialExample();
  auto f = Fragmentation::Create(ex.g, ex.assignment, 3);
  ASSERT_TRUE(f.ok());
  for (uint32_t site = 0; site < 3; ++site) {
    LocalEngine inc(&f->fragment(site), &ex.q, true);
    LocalEngine rebuild(&f->fragment(site), &ex.q, false);
    inc.Initialize();
    rebuild.Initialize();
    // Feed both the same remote false and compare candidate sets.
    NodeId f2_global = 7;
    std::vector<uint64_t> keys = {MakeVarKey(SocialExample::kF, f2_global)};
    inc.ApplyRemoteFalses(keys);
    rebuild.ApplyRemoteFalses(keys);
    auto a = inc.LocalCandidates();
    auto b = rebuild.LocalCandidates();
    for (NodeId u = 0; u < 4; ++u) {
      EXPECT_TRUE(a[u] == b[u]) << "site " << site << " query " << u;
    }
    EXPECT_EQ(rebuild.recompute_count(), 2u);
    EXPECT_EQ(inc.recompute_count(), 1u);
  }
}

TEST(LocalEngineTest, SinkVirtualVariablesAreNotFrontier) {
  // Q: a -> b with b a sink. A virtual b-node's X(b, v) is decided by its
  // label alone, so it must not appear in the undecided frontier.
  Pattern q(MakeGraph({0, 1}, {{0, 1}}));
  Graph g = MakeGraph({0, 1}, {{0, 1}});
  auto f = Fragmentation::Create(g, {0, 1}, 2);
  ASSERT_TRUE(f.ok());
  LocalEngine engine(&f->fragment(0), &q, true);
  engine.Initialize();
  EXPECT_EQ(engine.NumUndecidedFrontier(), 0u);
  // And the local a-node stays a candidate (virtual b counts as true).
  auto candidates = engine.LocalCandidates();
  EXPECT_EQ(candidates[0].Count(), 1u);
}

TEST(LocalEngineTest, SinkFrontierFoldsToTrueOnInstall) {
  // Q: a -> b -> c with c a SINK. Site 1's in-node variable X(b, node1)
  // depends only on the sink variable X(c, node2), which its local labels
  // already decide — the pushed answer must therefore be a definite TRUE
  // and installation must create no fresh dependencies at site 0.
  Pattern q(MakeGraph({0, 1, 2}, {{0, 1}, {1, 2}}));
  Graph g = MakeGraph({0, 1, 2}, {{0, 1}, {1, 2}});
  auto f = Fragmentation::Create(g, {0, 1, 2}, 3);
  ASSERT_TRUE(f.ok());

  LocalEngine s1(&f->fragment(1), &q, true);
  s1.Initialize();
  ReducedSystem pushed = s1.ReduceInNodeEquations();
  ASSERT_EQ(pushed.entries.size(), 1u);
  EXPECT_EQ(pushed.entries[0].kind, ReducedEntry::kTrue);

  LocalEngine s0(&f->fragment(0), &q, true);
  s0.Initialize();
  auto fresh = s0.InstallReducedSystem(pushed);
  EXPECT_TRUE(fresh.empty());
  EXPECT_EQ(s0.LocalCandidates()[0].Count(), 1u);
}

TEST(LocalEngineTest, InstallReducedSystemResolvesFrontier) {
  // Q: a -> b -> c -> d (4-chain, so c is NOT a sink). Fragments: one node
  // each. Site 1 pushes "X(b, node1) = X(c, node2)" to site 0; a false for
  // (c, node2) must then kill site 0's a-candidate through the installed
  // equation, bypassing site 1.
  Pattern q(MakeGraph({0, 1, 2, 3}, {{0, 1}, {1, 2}, {2, 3}}));
  Graph g = MakeGraph({0, 1, 2, 3}, {{0, 1}, {1, 2}, {2, 3}});
  auto f = Fragmentation::Create(g, {0, 1, 2, 3}, 4);
  ASSERT_TRUE(f.ok());

  LocalEngine s0(&f->fragment(0), &q, true);
  s0.Initialize();
  ASSERT_EQ(s0.NumUndecidedFrontier(), 1u);  // X(b, node1)

  LocalEngine s1(&f->fragment(1), &q, true);
  s1.Initialize();
  ReducedSystem pushed = s1.ReduceInNodeEquations();
  ASSERT_FALSE(pushed.entries.empty());

  auto fresh = s0.InstallReducedSystem(pushed);
  // Site 0 now depends on (c, node2) directly.
  ASSERT_EQ(fresh.size(), 1u);
  EXPECT_EQ(VarKeyGlobalNode(fresh[0]), 2u);
  EXPECT_EQ(VarKeyQueryNode(fresh[0]), 2u);

  s0.ApplyRemoteFalses({fresh[0]});
  auto candidates = s0.LocalCandidates();
  EXPECT_EQ(candidates[0].Count(), 0u);  // a-candidate dead
}

TEST(LocalEngineTest, FalseQueryNodesForReportsLabelAndRefinementFalses) {
  auto ex = MakeSocialExample();
  auto f = Fragmentation::Create(ex.g, ex.assignment, 3);
  ASSERT_TRUE(f.ok());
  LocalEngine engine(&f->fragment(0), &ex.q, true);
  engine.Initialize();
  // f1 (global 3, local in fragment 0): X(F, f1) is false after lEval.
  const Fragment& frag = f->fragment(0);
  NodeId f1_local = frag.ToLocal(3);
  ASSERT_NE(f1_local, kInvalidNode);
  auto falses = engine.FalseQueryNodesFor(f1_local);
  EXPECT_EQ(falses, (std::vector<NodeId>{SocialExample::kF}));
}

// The wire key packs the query node into 16 bits; anything wider would
// silently alias keys between query nodes. Oversized ids must be rejected
// loudly, not truncated.
TEST(VarKeyDeathTest, OversizedQueryNodeAborts) {
#ifdef NDEBUG
  GTEST_SKIP() << "DGS_DCHECK is compiled out in release builds; the "
                  "public API guard below still applies";
#else
  EXPECT_DEATH(MakeVarKey(1u << 16, 0), "16-bit");
  EXPECT_DEATH(MakeVarKey(70000, 42), "16-bit");
#endif
}

TEST(VarKeyTest, MaxInRangeQueryNodeRoundTrips) {
  uint64_t key = MakeVarKey((1u << 16) - 1, 0xffffffffu);
  EXPECT_EQ(VarKeyQueryNode(key), (1u << 16) - 1);
  EXPECT_EQ(VarKeyGlobalNode(key), 0xffffffffu);
}

// The undecided-frontier set and the false-var count are maintained
// incrementally (dMes calls them every superstep); they must agree with a
// brute-force recount through every mutation: initialization, remote
// falses, and full recomputation (non-incremental mode).
TEST(LocalEngineTest, IncrementalFrontierCountersStayInSync) {
  auto ex = MakeSocialExample();
  auto f = Fragmentation::Create(ex.g, ex.assignment, 3);
  ASSERT_TRUE(f.ok());
  for (bool incremental : {true, false}) {
    LocalEngine engine(&f->fragment(0), &ex.q, incremental);
    engine.Initialize();
    auto check = [&](const char* when) {
      SCOPED_TRACE(testing::Message()
                   << when << " incremental=" << incremental);
      auto keys = engine.UndecidedFrontierKeys();
      EXPECT_EQ(engine.NumUndecidedFrontier(), keys.size());
      // Keys are unique and every one is still undecided.
      std::vector<uint64_t> sorted(keys);
      std::sort(sorted.begin(), sorted.end());
      EXPECT_EQ(std::unique(sorted.begin(), sorted.end()), sorted.end());
      for (uint64_t key : keys) EXPECT_FALSE(engine.IsKeyFalse(key));
      // A second drain is idempotent (lazy compaction must not drop live
      // entries).
      EXPECT_EQ(engine.UndecidedFrontierKeys(), keys);
    };
    check("after init");
    const size_t frontier_before = engine.NumUndecidedFrontier();
    const size_t false_before = engine.NumFalseVars();
    ASSERT_GT(frontier_before, 0u);

    // Refute one undecided frontier variable remotely.
    auto keys = engine.UndecidedFrontierKeys();
    engine.ApplyRemoteFalses({keys[0]});
    check("after first remote false");
    EXPECT_EQ(engine.NumUndecidedFrontier(), frontier_before - 1);
    EXPECT_GT(engine.NumFalseVars(), false_before);

    // Refuting the same key again changes nothing.
    engine.ApplyRemoteFalses({keys[0]});
    check("after duplicate remote false");
    EXPECT_EQ(engine.NumUndecidedFrontier(), frontier_before - 1);

    // Refute everything that is left; the frontier must drain to zero.
    engine.ApplyRemoteFalses(engine.UndecidedFrontierKeys());
    check("after refuting all");
    EXPECT_EQ(engine.NumUndecidedFrontier(), 0u);
  }
}

TEST(LocalEngineTest, IsKeyFalseSemantics) {
  auto ex = MakeSocialExample();
  auto f = Fragmentation::Create(ex.g, ex.assignment, 3);
  ASSERT_TRUE(f.ok());
  LocalEngine engine(&f->fragment(0), &ex.q, true);
  engine.Initialize();
  // Label mismatch => false. (yb1 is global node 1, label YB.)
  EXPECT_TRUE(engine.IsKeyFalse(MakeVarKey(SocialExample::kSP, 1)));
  // Refined false: X(F, f1).
  EXPECT_TRUE(engine.IsKeyFalse(MakeVarKey(SocialExample::kF, 3)));
  // Undecided: X(SP, sp1) (global 2).
  EXPECT_FALSE(engine.IsKeyFalse(MakeVarKey(SocialExample::kSP, 2)));
}

}  // namespace
}  // namespace dgs
