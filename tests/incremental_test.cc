#include "simulation/incremental.h"

#include <gtest/gtest.h>

#include "graph/generators.h"

namespace dgs {
namespace {

// Rebuilds the graph without the given deleted edges.
Graph Without(const Graph& g,
              const std::vector<std::pair<NodeId, NodeId>>& deleted) {
  GraphBuilder b;
  for (NodeId v = 0; v < g.NumNodes(); ++v) b.AddNode(g.LabelOf(v));
  for (auto e : g.Edges()) {
    bool gone = false;
    for (auto d : deleted) gone = gone || d == e;
    if (!gone) b.AddEdge(e.first, e.second);
  }
  return std::move(b).Build();
}

TEST(IncrementalTest, InitialEqualsBatch) {
  auto ex = MakeSocialExample();
  IncrementalSimulation inc(ex.q, ex.g);
  EXPECT_TRUE(inc.Result() == ComputeSimulation(ex.q, ex.g));
}

TEST(IncrementalTest, Example8EdgeDeletion) {
  // Deleting (f2, sp1) from the Fig. 1 graph: Example 8 walks through the
  // cascade X(F,f2), X(YF,yf1), ... — the whole cycle unravels.
  auto ex = MakeSocialExample();
  IncrementalSimulation inc(ex.q, ex.g);
  NodeId f2 = 7, sp1 = 2;
  ASSERT_EQ(ex.node_names[f2], "f2");
  ASSERT_EQ(ex.node_names[sp1], "sp1");
  size_t invalidated = inc.DeleteEdge(f2, sp1);
  EXPECT_GT(invalidated, 0u);
  Graph g2 = Without(ex.g, {{f2, sp1}});
  EXPECT_TRUE(inc.Result() == ComputeSimulation(ex.q, g2));
}

TEST(IncrementalTest, DeletingAbsentEdgeIsNoOp) {
  auto ex = MakeSocialExample();
  IncrementalSimulation inc(ex.q, ex.g);
  EXPECT_EQ(inc.DeleteEdge(0, 0), 0u);
  size_t first = inc.DeleteEdge(7, 2);
  EXPECT_GT(first, 0u);
  EXPECT_EQ(inc.DeleteEdge(7, 2), 0u);  // already gone
}

TEST(IncrementalTest, IsCandidateTracksResult) {
  auto ex = MakeSocialExample();
  IncrementalSimulation inc(ex.q, ex.g);
  EXPECT_TRUE(inc.IsCandidate(SocialExample::kF, 7));   // f2 matches F
  inc.DeleteEdge(7, 2);                                 // cut (f2, sp1)
  EXPECT_FALSE(inc.IsCandidate(SocialExample::kF, 7));  // no longer
}

struct IncCase {
  uint64_t seed;
  size_t n, m;
  Label alphabet;
  size_t nq, mq;
  int deletions;
};

class IncrementalSweep : public ::testing::TestWithParam<IncCase> {};

TEST_P(IncrementalSweep, AgreesWithRecomputationAfterEveryDeletion) {
  const IncCase& c = GetParam();
  Rng rng(c.seed);
  Graph g = RandomGraph(c.n, c.m, c.alphabet, rng);
  PatternSpec spec;
  spec.num_nodes = c.nq;
  spec.num_edges = c.mq;
  spec.kind = PatternKind::kCyclic;
  auto extracted = ExtractPattern(g, spec, rng);
  Pattern q = extracted.ok() ? *extracted
                             : SynthesizePattern(spec, c.alphabet, rng);

  IncrementalSimulation inc(q, g);
  std::vector<std::pair<NodeId, NodeId>> deleted;
  auto edges = g.Edges();
  for (int i = 0; i < c.deletions && !edges.empty(); ++i) {
    size_t pick = rng.UniformInt(edges.size());
    auto e = edges[pick];
    edges.erase(edges.begin() + static_cast<long>(pick));
    inc.DeleteEdge(e.first, e.second);
    deleted.push_back(e);
    Graph g2 = Without(g, deleted);
    ASSERT_TRUE(inc.Result() == ComputeSimulation(q, g2))
        << "divergence after deleting edge #" << i << " (" << e.first << ","
        << e.second << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, IncrementalSweep,
    ::testing::Values(IncCase{501, 40, 160, 2, 3, 5, 12},
                      IncCase{502, 60, 240, 3, 4, 7, 12},
                      IncCase{503, 80, 240, 4, 5, 8, 10},
                      IncCase{504, 50, 300, 2, 4, 8, 15},
                      IncCase{505, 100, 300, 5, 5, 9, 10}));

TEST(IncrementalTest, AddEdgeRestoresDeletedMatch) {
  // Deleting (f2, sp1) unravels the Fig. 1 cycle (Example 8); re-inserting
  // the same edge must restore the exact original fixpoint.
  auto ex = MakeSocialExample();
  IncrementalSimulation inc(ex.q, ex.g);
  auto original = inc.Result();
  ASSERT_GT(inc.DeleteEdge(7, 2), 0u);
  size_t restored = inc.AddEdge(7, 2);
  EXPECT_GT(restored, 0u);
  EXPECT_TRUE(inc.Result() == original);
  EXPECT_TRUE(inc.Result() == ComputeSimulation(ex.q, ex.g));
}

TEST(IncrementalTest, AddingPresentEdgeIsNoOp) {
  auto ex = MakeSocialExample();
  IncrementalSimulation inc(ex.q, ex.g);
  auto before = inc.Result();
  EXPECT_EQ(inc.AddEdge(7, 2), 0u);  // (f2, sp1) already present
  EXPECT_TRUE(inc.Result() == before);
}

TEST(IncrementalTest, AddEdgeAgreesWithRecomputation) {
  // Fresh edges (not restorations): grow a sparse random graph edge by
  // edge and check the maintained relation against a from-scratch run.
  Rng rng(521);
  Graph g = RandomGraph(40, 80, 3, rng);
  PatternSpec spec;
  spec.num_nodes = 4;
  spec.num_edges = 6;
  spec.kind = PatternKind::kCyclic;
  auto extracted = ExtractPattern(g, spec, rng);
  Pattern q = extracted.ok() ? *extracted : SynthesizePattern(spec, 3, rng);

  IncrementalSimulation inc(q, g);
  DynamicAdjacency mirror(g);
  for (int i = 0; i < 25; ++i) {
    NodeId from = static_cast<NodeId>(rng.UniformInt(g.NumNodes()));
    NodeId to = static_cast<NodeId>(rng.UniformInt(g.NumNodes()));
    const bool fresh = mirror.InsertEdge(from, to);
    const size_t flipped = inc.AddEdge(from, to);
    if (!fresh) EXPECT_EQ(flipped, 0u);
    ASSERT_TRUE(inc.Result() == ComputeSimulation(q, mirror.ToGraph()))
        << "divergence after inserting edge #" << i << " (" << from << ","
        << to << ")";
  }
}

struct MixedCase {
  uint64_t seed;
  size_t n, m;
  Label alphabet;
  size_t nq, mq;
  int mutations;
  uint32_t threads;
};

class MixedSweep : public ::testing::TestWithParam<MixedCase> {};

TEST_P(MixedSweep, InterleavedInsertDeleteAgreesWithRecomputation) {
  // Random interleaving of insertions and deletions; after every mutation
  // the maintained relation must equal the from-scratch fixpoint on the
  // mutated graph, at every drain width.
  const MixedCase& c = GetParam();
  Rng rng(c.seed);
  Graph g = RandomGraph(c.n, c.m, c.alphabet, rng);
  PatternSpec spec;
  spec.num_nodes = c.nq;
  spec.num_edges = c.mq;
  spec.kind = PatternKind::kCyclic;
  auto extracted = ExtractPattern(g, spec, rng);
  Pattern q = extracted.ok() ? *extracted
                             : SynthesizePattern(spec, c.alphabet, rng);

  IncrementalSimulation inc(q, g, c.threads);
  DynamicAdjacency mirror(g);
  for (int i = 0; i < c.mutations; ++i) {
    const bool remove = rng.UniformInt(2) == 0;
    if (remove) {
      auto edges = mirror.ToGraph().Edges();
      if (edges.empty()) continue;
      auto e = edges[rng.UniformInt(edges.size())];
      ASSERT_TRUE(mirror.RemoveEdge(e.first, e.second));
      auto before = inc.Result();
      const size_t flipped = inc.DeleteEdge(e.first, e.second);
      EXPECT_EQ(flipped > 0, !(inc.Result() == before));
    } else {
      NodeId from = static_cast<NodeId>(rng.UniformInt(c.n));
      NodeId to = static_cast<NodeId>(rng.UniformInt(c.n));
      const bool fresh = mirror.InsertEdge(from, to);
      const size_t flipped = inc.AddEdge(from, to);
      if (!fresh) EXPECT_EQ(flipped, 0u);
    }
    ASSERT_TRUE(inc.Result() == ComputeSimulation(q, mirror.ToGraph()))
        << "divergence after mutation #" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Widths, MixedSweep,
    ::testing::Values(MixedCase{531, 40, 160, 2, 3, 5, 30, 1},
                      MixedCase{531, 40, 160, 2, 3, 5, 30, 2},
                      MixedCase{531, 40, 160, 2, 3, 5, 30, 8},
                      MixedCase{532, 60, 240, 3, 4, 7, 24, 2},
                      MixedCase{533, 80, 200, 4, 5, 8, 24, 8}));

TEST(IncrementalTest, BorrowModeSharesOneAdjacency) {
  // Two patterns watching ONE caller-owned adjacency: mutate it once per
  // edge, notify both instances, and each must track its own from-scratch
  // fixpoint — the subscription registry's exact usage.
  Rng rng(541);
  Graph g = RandomGraph(50, 200, 3, rng);
  PatternSpec spec;
  spec.num_nodes = 3;
  spec.num_edges = 4;
  spec.kind = PatternKind::kCyclic;
  auto e1 = ExtractPattern(g, spec, rng);
  Pattern q1 = e1.ok() ? *e1 : SynthesizePattern(spec, 3, rng);
  spec.num_nodes = 4;
  spec.num_edges = 6;
  auto e2 = ExtractPattern(g, spec, rng);
  Pattern q2 = e2.ok() ? *e2 : SynthesizePattern(spec, 3, rng);

  DynamicAdjacency shared(g);
  IncrementalSimulation a(q1, &shared);
  IncrementalSimulation b(q2, &shared, /*num_threads=*/2);
  EXPECT_TRUE(a.Result() == ComputeSimulation(q1, g));
  EXPECT_TRUE(b.Result() == ComputeSimulation(q2, g));

  for (int i = 0; i < 20; ++i) {
    if (rng.UniformInt(2) == 0) {
      auto edges = shared.ToGraph().Edges();
      if (edges.empty()) continue;
      auto e = edges[rng.UniformInt(edges.size())];
      ASSERT_TRUE(shared.RemoveEdge(e.first, e.second));
      a.ApplyEdgeRemoved(e.first, e.second);
      b.ApplyEdgeRemoved(e.first, e.second);
    } else {
      NodeId from = static_cast<NodeId>(rng.UniformInt(g.NumNodes()));
      NodeId to = static_cast<NodeId>(rng.UniformInt(g.NumNodes()));
      if (!shared.InsertEdge(from, to)) continue;
      a.ApplyEdgeInserted(from, to);
      b.ApplyEdgeInserted(from, to);
    }
    Graph now = shared.ToGraph();
    ASSERT_TRUE(a.Result() == ComputeSimulation(q1, now))
        << "q1 diverged after mutation #" << i;
    ASSERT_TRUE(b.Result() == ComputeSimulation(q2, now))
        << "q2 diverged after mutation #" << i;
  }
}

TEST(IncrementalTest, DrainToEmptyGraph) {
  // Delete every edge: only sink-query label matches survive.
  Rng rng(511);
  Graph g = RandomGraph(30, 90, 2, rng);
  Pattern q(MakeGraph({0, 1}, {{0, 1}}));
  IncrementalSimulation inc(q, g);
  for (auto e : g.Edges()) inc.DeleteEdge(e.first, e.second);
  auto result = inc.Result();
  // No a-node can have a b-child anymore.
  EXPECT_FALSE(result.GraphMatches());
}

}  // namespace
}  // namespace dgs
