#include "simulation/incremental.h"

#include <gtest/gtest.h>

#include "graph/generators.h"

namespace dgs {
namespace {

// Rebuilds the graph without the given deleted edges.
Graph Without(const Graph& g,
              const std::vector<std::pair<NodeId, NodeId>>& deleted) {
  GraphBuilder b;
  for (NodeId v = 0; v < g.NumNodes(); ++v) b.AddNode(g.LabelOf(v));
  for (auto e : g.Edges()) {
    bool gone = false;
    for (auto d : deleted) gone = gone || d == e;
    if (!gone) b.AddEdge(e.first, e.second);
  }
  return std::move(b).Build();
}

TEST(IncrementalTest, InitialEqualsBatch) {
  auto ex = MakeSocialExample();
  IncrementalSimulation inc(ex.q, ex.g);
  EXPECT_TRUE(inc.Result() == ComputeSimulation(ex.q, ex.g));
}

TEST(IncrementalTest, Example8EdgeDeletion) {
  // Deleting (f2, sp1) from the Fig. 1 graph: Example 8 walks through the
  // cascade X(F,f2), X(YF,yf1), ... — the whole cycle unravels.
  auto ex = MakeSocialExample();
  IncrementalSimulation inc(ex.q, ex.g);
  NodeId f2 = 7, sp1 = 2;
  ASSERT_EQ(ex.node_names[f2], "f2");
  ASSERT_EQ(ex.node_names[sp1], "sp1");
  size_t invalidated = inc.DeleteEdge(f2, sp1);
  EXPECT_GT(invalidated, 0u);
  Graph g2 = Without(ex.g, {{f2, sp1}});
  EXPECT_TRUE(inc.Result() == ComputeSimulation(ex.q, g2));
}

TEST(IncrementalTest, DeletingAbsentEdgeIsNoOp) {
  auto ex = MakeSocialExample();
  IncrementalSimulation inc(ex.q, ex.g);
  EXPECT_EQ(inc.DeleteEdge(0, 0), 0u);
  size_t first = inc.DeleteEdge(7, 2);
  EXPECT_GT(first, 0u);
  EXPECT_EQ(inc.DeleteEdge(7, 2), 0u);  // already gone
}

TEST(IncrementalTest, IsCandidateTracksResult) {
  auto ex = MakeSocialExample();
  IncrementalSimulation inc(ex.q, ex.g);
  EXPECT_TRUE(inc.IsCandidate(SocialExample::kF, 7));   // f2 matches F
  inc.DeleteEdge(7, 2);                                 // cut (f2, sp1)
  EXPECT_FALSE(inc.IsCandidate(SocialExample::kF, 7));  // no longer
}

struct IncCase {
  uint64_t seed;
  size_t n, m;
  Label alphabet;
  size_t nq, mq;
  int deletions;
};

class IncrementalSweep : public ::testing::TestWithParam<IncCase> {};

TEST_P(IncrementalSweep, AgreesWithRecomputationAfterEveryDeletion) {
  const IncCase& c = GetParam();
  Rng rng(c.seed);
  Graph g = RandomGraph(c.n, c.m, c.alphabet, rng);
  PatternSpec spec;
  spec.num_nodes = c.nq;
  spec.num_edges = c.mq;
  spec.kind = PatternKind::kCyclic;
  auto extracted = ExtractPattern(g, spec, rng);
  Pattern q = extracted.ok() ? *extracted
                             : SynthesizePattern(spec, c.alphabet, rng);

  IncrementalSimulation inc(q, g);
  std::vector<std::pair<NodeId, NodeId>> deleted;
  auto edges = g.Edges();
  for (int i = 0; i < c.deletions && !edges.empty(); ++i) {
    size_t pick = rng.UniformInt(edges.size());
    auto e = edges[pick];
    edges.erase(edges.begin() + static_cast<long>(pick));
    inc.DeleteEdge(e.first, e.second);
    deleted.push_back(e);
    Graph g2 = Without(g, deleted);
    ASSERT_TRUE(inc.Result() == ComputeSimulation(q, g2))
        << "divergence after deleting edge #" << i << " (" << e.first << ","
        << e.second << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, IncrementalSweep,
    ::testing::Values(IncCase{501, 40, 160, 2, 3, 5, 12},
                      IncCase{502, 60, 240, 3, 4, 7, 12},
                      IncCase{503, 80, 240, 4, 5, 8, 10},
                      IncCase{504, 50, 300, 2, 4, 8, 15},
                      IncCase{505, 100, 300, 5, 5, 9, 10}));

TEST(IncrementalTest, DrainToEmptyGraph) {
  // Delete every edge: only sink-query label matches survive.
  Rng rng(511);
  Graph g = RandomGraph(30, 90, 2, rng);
  Pattern q(MakeGraph({0, 1}, {{0, 1}}));
  IncrementalSimulation inc(q, g);
  for (auto e : g.Edges()) inc.DeleteEdge(e.first, e.second);
  auto result = inc.Result();
  // No a-node can have a b-child anymore.
  EXPECT_FALSE(result.GraphMatches());
}

}  // namespace
}  // namespace dgs
