#include "util/table.h"

#include <gtest/gtest.h>

#include <sstream>

namespace dgs {
namespace {

TEST(TableTest, AlignsColumns) {
  TablePrinter table({"name", "value"});
  table.AddRow({"x", "1"});
  table.AddRow({"longer-name", "23456"});
  std::stringstream ss;
  table.Print(ss);
  std::string out = ss.str();
  // Header present, separator present, both rows present.
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
  EXPECT_NE(out.find("longer-name"), std::string::npos);
  // All lines after the rule share the same column start for "value".
  size_t header_pos = out.find("value");
  size_t row_pos = out.find("23456");
  EXPECT_EQ(header_pos % (out.find('\n') + 1), row_pos % (out.find('\n') + 1));
}

TEST(TableDeathTest, ArityMismatchAborts) {
  TablePrinter table({"a", "b"});
  EXPECT_DEATH(table.AddRow({"only-one"}), "arity");
}

TEST(FormatTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(1.23456, 2), "1.23");
  EXPECT_EQ(FormatDouble(1.0, 0), "1");
  EXPECT_EQ(FormatDouble(-0.5, 1), "-0.5");
}

TEST(FormatTest, FormatBytes) {
  EXPECT_EQ(FormatBytes(17), "17 B");
  EXPECT_EQ(FormatBytes(2048), "2.00 KB");
  EXPECT_EQ(FormatBytes(3 * 1024ull * 1024), "3.00 MB");
  EXPECT_EQ(FormatBytes(5 * 1024ull * 1024 * 1024), "5.00 GB");
}

}  // namespace
}  // namespace dgs
