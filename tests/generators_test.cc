#include "graph/generators.h"

#include <gtest/gtest.h>

#include <set>

#include "graph/algorithms.h"
#include "simulation/simulation.h"

namespace dgs {
namespace {

TEST(GeneratorsTest, RandomGraphShape) {
  Rng rng(1);
  Graph g = RandomGraph(1000, 4000, kDefaultAlphabet, rng);
  EXPECT_EQ(g.NumNodes(), 1000u);
  EXPECT_GT(g.NumEdges(), 3800u);  // a few dropped by dedupe/self-loop skip
  EXPECT_LE(g.NumEdges(), 4000u);
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    EXPECT_LT(g.LabelOf(v), kDefaultAlphabet);
    EXPECT_FALSE(g.HasEdge(v, v));
  }
}

TEST(GeneratorsTest, RandomGraphDeterministic) {
  Rng rng1(42), rng2(42);
  Graph a = RandomGraph(200, 600, 5, rng1);
  Graph b = RandomGraph(200, 600, 5, rng2);
  EXPECT_EQ(a.Edges(), b.Edges());
}

TEST(GeneratorsTest, WebGraphHasHubs) {
  Rng rng(2);
  Graph g = WebGraph(2000, 10000, kDefaultAlphabet, rng);
  EXPECT_EQ(g.NumNodes(), 2000u);
  size_t max_in = 0;
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    max_in = std::max(max_in, g.InDegree(v));
  }
  // Skewed targeting should create hubs far above the mean in-degree (~5).
  EXPECT_GT(max_in, 25u);
}

TEST(GeneratorsTest, CitationDagIsAcyclic) {
  Rng rng(3);
  Graph g = CitationDag(3000, 7000, kDefaultAlphabet, rng);
  EXPECT_TRUE(IsAcyclic(g));
  EXPECT_GT(g.NumEdges(), 6000u);
}

TEST(GeneratorsTest, ClusteredGraphHasLocality) {
  Rng rng(12);
  Graph g = ClusteredGraph(4000, 16000, 8, rng, /*locality=*/0.9,
                           /*window=*/32);
  size_t local = 0;
  for (auto [u, v] : g.Edges()) {
    size_t dist = u < v ? v - u : u - v;
    if (dist <= 32 || dist >= g.NumNodes() - 32) ++local;
  }
  EXPECT_GT(static_cast<double>(local) / static_cast<double>(g.NumEdges()),
            0.8);
}

TEST(GeneratorsTest, CitationDagRecencyBias) {
  Rng rng(13);
  Graph g = CitationDag(50000, 120000, 5, rng);
  size_t recent = 0;
  for (auto [u, v] : g.Edges()) {
    ASSERT_GT(u, v);  // strictly older target = acyclic by construction
    if (u - v <= 2048) ++recent;
  }
  EXPECT_GT(static_cast<double>(recent) / static_cast<double>(g.NumEdges()),
            0.8);
}

TEST(GeneratorsTest, RandomTreeIsDownwardForest) {
  Rng rng(4);
  Graph g = RandomTree(500, kDefaultAlphabet, rng);
  EXPECT_TRUE(IsDownwardForest(g));
  EXPECT_EQ(g.NumEdges(), 499u);
  EXPECT_TRUE(IsWeaklyConnected(g));
}

TEST(GeneratorsTest, RandomTreeRespectsFanout) {
  Rng rng(5);
  Graph g = RandomTree(300, 3, rng, /*max_fanout=*/2);
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    EXPECT_LE(g.OutDegree(v), 2u);
  }
}

TEST(LocalityGadgetTest, IntactCycleMatchesEverywhere) {
  auto gadget = MakeLocalityGadget(10);
  EXPECT_EQ(gadget.g.NumNodes(), 20u);
  EXPECT_EQ(gadget.g.NumEdges(), 20u);
  auto result = ComputeSimulation(gadget.q, gadget.g);
  EXPECT_TRUE(result.GraphMatches());
  // Every A node matches query node A, every B node matches B (Example 3).
  EXPECT_EQ(result.MatchSet(0).Count(), 10u);
  EXPECT_EQ(result.MatchSet(1).Count(), 10u);
}

TEST(LocalityGadgetTest, BrokenCycleMatchesNothing) {
  auto gadget = MakeLocalityGadget(10, /*broken=*/true);
  auto result = ComputeSimulation(gadget.q, gadget.g);
  EXPECT_FALSE(result.GraphMatches());
  EXPECT_EQ(result.RelationSize(), 0u);
}

TEST(LocalityGadgetTest, AssignmentPairsNodes) {
  auto gadget = MakeLocalityGadget(4);
  EXPECT_EQ(gadget.assignment,
            (std::vector<uint32_t>{0, 0, 1, 1, 2, 2, 3, 3}));
}

TEST(SocialExampleTest, MatchesExample2) {
  auto ex = MakeSocialExample();
  EXPECT_EQ(ex.g.NumNodes(), 13u);
  EXPECT_EQ(ex.q.NumNodes(), 4u);
  EXPECT_EQ(ex.q.NumEdges(), 5u);
  EXPECT_FALSE(ex.q.IsDag());  // the recommendation cycle
  auto result = ComputeSimulation(ex.q, ex.g);
  ASSERT_TRUE(result.GraphMatches());
  for (NodeId u = 0; u < 4; ++u) {
    EXPECT_EQ(result.Matches(u), ex.expected_matches[u])
        << "query node " << u;
  }
}

TEST(DagExampleTest, DoesNotMatch) {
  auto ex = MakeDagExample();
  ASSERT_TRUE(ex.q.IsDag());
  EXPECT_EQ(ex.q.MaxRank(), 4u);
  auto result = ComputeSimulation(ex.q, ex.g);
  EXPECT_FALSE(result.GraphMatches());
}

TEST(ExtractPatternTest, CyclicPatternAlwaysMatches) {
  Rng rng(6);
  Graph g = WebGraph(3000, 15000, kDefaultAlphabet, rng);
  for (int trial = 0; trial < 5; ++trial) {
    PatternSpec spec;
    spec.num_nodes = 5;
    spec.num_edges = 10;
    spec.kind = PatternKind::kCyclic;
    auto q = ExtractPattern(g, spec, rng);
    ASSERT_TRUE(q.ok()) << q.status().ToString();
    EXPECT_FALSE(q->IsDag());
    EXPECT_LE(q->NumNodes(), 5u);
    auto result = ComputeSimulation(*q, g);
    EXPECT_TRUE(result.GraphMatches());
  }
}

TEST(ExtractPatternTest, DagDepthIsExact) {
  Rng rng(7);
  Graph g = CitationDag(5000, 12000, kDefaultAlphabet, rng);
  for (uint32_t depth = 2; depth <= 6; ++depth) {
    PatternSpec spec;
    spec.num_nodes = depth + 3;
    spec.num_edges = depth + 6;
    spec.kind = PatternKind::kDag;
    spec.dag_depth = depth;
    auto q = ExtractPattern(g, spec, rng);
    ASSERT_TRUE(q.ok()) << q.status().ToString();
    EXPECT_TRUE(q->IsDag());
    EXPECT_EQ(q->MaxRank(), depth);
    EXPECT_TRUE(ComputeSimulation(*q, g).GraphMatches());
  }
}

TEST(ExtractPatternTest, CyclicFailsOnDag) {
  Rng rng(8);
  Graph g = CitationDag(500, 1200, 5, rng);
  PatternSpec spec;
  spec.kind = PatternKind::kCyclic;
  auto q = ExtractPattern(g, spec, rng);
  EXPECT_FALSE(q.ok());
  EXPECT_EQ(q.status().code(), StatusCode::kNotFound);
}

TEST(ExtractPatternTest, RejectsBadArguments) {
  Rng rng(9);
  Graph g = RandomGraph(10, 20, 3, rng);
  PatternSpec spec;
  spec.num_nodes = 0;
  EXPECT_FALSE(ExtractPattern(g, spec, rng).ok());
  spec.num_nodes = 2;
  spec.kind = PatternKind::kDag;
  spec.dag_depth = 5;  // needs >= 6 nodes
  EXPECT_FALSE(ExtractPattern(g, spec, rng).ok());
  EXPECT_FALSE(ExtractPattern(Graph(), PatternSpec{}, rng).ok());
}

TEST(SynthesizePatternTest, ShapesRespected) {
  Rng rng(10);
  PatternSpec spec;
  spec.num_nodes = 6;
  spec.num_edges = 12;
  spec.kind = PatternKind::kCyclic;
  Pattern cyc = SynthesizePattern(spec, 8, rng);
  EXPECT_EQ(cyc.NumNodes(), 6u);
  EXPECT_FALSE(cyc.IsDag());
  EXPECT_TRUE(IsWeaklyConnected(cyc.graph()));

  spec.kind = PatternKind::kDag;
  spec.dag_depth = 3;
  Pattern dag = SynthesizePattern(spec, 8, rng);
  EXPECT_TRUE(dag.IsDag());
  EXPECT_EQ(dag.MaxRank(), 3u);

  spec.kind = PatternKind::kAny;
  Pattern any = SynthesizePattern(spec, 8, rng);
  EXPECT_TRUE(IsWeaklyConnected(any.graph()));
}

}  // namespace
}  // namespace dgs
