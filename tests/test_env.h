// DGS_THREADS plumbing for the test suite, mirroring bench/bench_common.h.
//
// The CI matrix runs one ctest pass with DGS_THREADS=2 so every parallel
// path — the cluster executor, the partitioned chaotic-relaxation drains,
// the parallel fan-out encoders — is exercised on every push, not only at
// the single-thread default. All results are thread-count-invariant by the
// runtime's determinism contract, so the same expectations hold at every
// width.

#ifndef DGS_TESTS_TEST_ENV_H_
#define DGS_TESTS_TEST_ENV_H_

#include <cstdlib>

#include "core/serving.h"

namespace dgs::testing {

// Executor width requested by the environment (default 1 = the sequential
// reference mode; 0 = all hardware threads; malformed values fall back
// to 1).
inline uint32_t EnvThreads() {
  const char* s = std::getenv("DGS_THREADS");
  if (s == nullptr) return 1;
  char* end = nullptr;
  long threads = std::strtol(s, &end, 10);
  if (end == s || *end != '\0' || threads < 0) return 1;
  return static_cast<uint32_t>(threads);
}

inline EngineOptions TestEngineOptions() {
  EngineOptions options;
  options.num_threads = EnvThreads();
  return options;
}

inline ClusterOptions TestClusterOptions() {
  ClusterOptions options;
  options.num_threads = EnvThreads();
  return options;
}

}  // namespace dgs::testing

#endif  // DGS_TESTS_TEST_ENV_H_
