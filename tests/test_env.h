// DGS_THREADS / DGS_TRANSPORT plumbing for the test suite, mirroring
// bench/bench_common.h.
//
// The CI matrix runs one ctest pass with DGS_THREADS=2 so every parallel
// path — the cluster executor, the partitioned chaotic-relaxation drains,
// the parallel fan-out encoders — is exercised on every push, not only at
// the single-thread default. All results are thread-count-invariant by the
// runtime's determinism contract, so the same expectations hold at every
// width.
//
// A separate CI job runs with DGS_TRANSPORT=tcp:2 so the conformance
// suites execute every algorithm family over the multi-process socket
// backend. Results and charged accounting are backend-invariant by the
// transport contract (runtime/transport.h), so — like DGS_THREADS — the
// same expectations hold under every backend.

#ifndef DGS_TESTS_TEST_ENV_H_
#define DGS_TESTS_TEST_ENV_H_

#include <cstdlib>

#include "core/serving.h"
#include "runtime/transport.h"

namespace dgs::testing {

// Executor width requested by the environment (default 1 = the sequential
// reference mode; 0 = all hardware threads; malformed values fall back
// to 1).
inline uint32_t EnvThreads() {
  const char* s = std::getenv("DGS_THREADS");
  if (s == nullptr) return 1;
  char* end = nullptr;
  long threads = std::strtol(s, &end, 10);
  if (end == s || *end != '\0' || threads < 0) return 1;
  return static_cast<uint32_t>(threads);
}

// Round-execution backend requested by the environment: "loopback"
// (default), "tcp", or "tcp:<procs>". Malformed specs fall back to
// loopback — a typo'd CI variable should not silently pass by running
// everything in-process under a failed parse, but gtest has no global
// abort hook here, so the conformance suites assert the spec parses.
inline TransportOptions EnvTransport() {
  const char* s = std::getenv("DGS_TRANSPORT");
  if (s == nullptr) return TransportOptions{};
  auto parsed = ParseTransportSpec(s);
  if (!parsed.ok()) return TransportOptions{};
  return std::move(parsed).value();
}

inline EngineOptions TestEngineOptions() {
  EngineOptions options;
  options.num_threads = EnvThreads();
  options.transport = EnvTransport();
  return options;
}

inline ClusterOptions TestClusterOptions() {
  ClusterOptions options;
  options.num_threads = EnvThreads();
  options.transport = EnvTransport();
  return options;
}

}  // namespace dgs::testing

#endif  // DGS_TESTS_TEST_ENV_H_
