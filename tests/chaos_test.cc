// Chaos suite for the fault-injection harness (runtime/fault.h) and the
// tolerant delivery path (runtime/cluster.h).
//
// The load-bearing invariant: under drop/duplicate/reorder chaos WITH
// recovery, every algorithm family produces results and accounting
// bit-identical to the fault-free run, at every executor width — the
// recovered faults are visible only in DistOutcome::faults. Unrecoverable
// chaos (corruption, truncation, a site crash, a watchdog trip) must fail
// SOFT: a classified Status (DataLoss / Unavailable / DeadlineExceeded),
// a drained partial outcome, and a deployment that serves the next query
// cleanly.
//
// CI runs these suites under a fixed DGS_FAULT_SEED matrix (see
// .github/workflows/ci.yml): the fault schedule is a pure function of
// (plan, seed), so each seed is a distinct but fully reproducible chaos
// schedule. All suites here are named Chaos* so the sweep can filter them.

#include "runtime/fault.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "core/api.h"
#include "core/dgpm.h"
#include "core/engine.h"
#include "graph/generators.h"
#include "partition/partitioner.h"
#include "serve/server.h"
#include "test_env.h"

namespace dgs {
namespace {

// Base seed for the chaos schedules; the CI sweep varies it to cover
// distinct reproducible schedules without touching the test source.
uint64_t ChaosSeed() {
  const char* s = std::getenv("DGS_FAULT_SEED");
  if (s == nullptr) return 7;
  char* end = nullptr;
  unsigned long long seed = std::strtoull(s, &end, 10);
  if (end == s || *end != '\0') return 7;
  return static_cast<uint64_t>(seed);
}

// Everything that must be bit-identical between a recovered-chaos run and
// the fault-free reference: the answer plus the full deterministic
// accounting. (response_seconds is excluded: recovery charges simulated
// backoff there, and wall-clock is not deterministic anyway.)
void ExpectSameOutcome(const DistOutcome& chaos, const DistOutcome& clean,
                       const std::string& what) {
  EXPECT_TRUE(chaos.result == clean.result) << what;
  EXPECT_EQ(chaos.stats.data_bytes, clean.stats.data_bytes) << what;
  EXPECT_EQ(chaos.stats.control_bytes, clean.stats.control_bytes) << what;
  EXPECT_EQ(chaos.stats.result_bytes, clean.stats.result_bytes) << what;
  EXPECT_EQ(chaos.stats.data_messages, clean.stats.data_messages) << what;
  EXPECT_EQ(chaos.stats.control_messages, clean.stats.control_messages)
      << what;
  EXPECT_EQ(chaos.stats.result_messages, clean.stats.result_messages) << what;
  EXPECT_EQ(chaos.stats.rounds, clean.stats.rounds) << what;
  EXPECT_EQ(chaos.counters.vars_shipped.load(),
            clean.counters.vars_shipped.load())
      << what;
  EXPECT_EQ(chaos.counters.push_count.load(),
            clean.counters.push_count.load())
      << what;
  EXPECT_EQ(chaos.counters.equation_units.load(),
            clean.counters.equation_units.load())
      << what;
  EXPECT_EQ(chaos.counters.recomputations.load(),
            clean.counters.recomputations.load())
      << what;
  EXPECT_EQ(chaos.counters.supersteps.load(),
            clean.counters.supersteps.load())
      << what;
}

void ExpectSameFaultStats(const FaultStats& a, const FaultStats& b,
                          const std::string& what) {
  EXPECT_EQ(a.frames, b.frames) << what;
  EXPECT_EQ(a.drops, b.drops) << what;
  EXPECT_EQ(a.retransmits, b.retransmits) << what;
  EXPECT_EQ(a.lost, b.lost) << what;
  EXPECT_EQ(a.duplicates_injected, b.duplicates_injected) << what;
  EXPECT_EQ(a.duplicates_discarded, b.duplicates_discarded) << what;
  EXPECT_EQ(a.reorders, b.reorders) << what;
  EXPECT_EQ(a.corruptions, b.corruptions) << what;
  EXPECT_EQ(a.truncations, b.truncations) << what;
  EXPECT_EQ(a.checksum_rejects, b.checksum_rejects) << what;
  EXPECT_EQ(a.crashes, b.crashes) << what;
}

// The recovery sweep's plan: lossy and chaotic but recoverable — drops are
// retransmitted, duplicates deduplicated, reorders healed by the
// sequence-number sort. No payload mutation, so nothing can poison.
FaultPlan RecoveryPlan(uint64_t seed) {
  FaultPlan plan;
  plan.data.drop = 0.3;
  plan.data.duplicate = 0.2;
  plan.data.reorder = 0.3;
  plan.control = plan.data;
  plan.result = plan.data;
  plan.max_retries = 16;
  plan.seed = seed;
  return plan;
}

struct Family {
  const char* name;
  Algorithm algorithm;
  Graph g;
  std::vector<uint32_t> assignment;
  uint32_t sites;
  Pattern q;
};

std::vector<Family> MakeFamilies() {
  std::vector<Family> families;

  auto add = [&families](const char* name, Algorithm algorithm, Graph g,
                         uint32_t sites, PatternKind kind, uint64_t seed) {
    Rng rng(seed);
    std::vector<uint32_t> assignment =
        PartitionWithBoundaryRatio(g, sites, 0.3, rng);
    PatternSpec spec;
    spec.num_nodes = 4;
    spec.num_edges = kind == PatternKind::kCyclic ? 6 : 5;
    spec.kind = kind;
    auto q = ExtractPattern(g, spec, rng);
    DGS_CHECK(q.ok(), "pattern extraction failed");
    families.push_back({name, algorithm, std::move(g), std::move(assignment),
                        sites, std::move(*q)});
  };

  {
    Rng rng(2014);
    Graph web = WebGraph(1200, 5000, kDefaultAlphabet, rng);
    add("dGPM", Algorithm::kDgpm, web, 6, PatternKind::kCyclic, 11);
    add("dGPMNOpt", Algorithm::kDgpmNoOpt, web, 6, PatternKind::kCyclic, 12);
    add("dMes", Algorithm::kDMes, web, 4, PatternKind::kCyclic, 13);
    add("Match", Algorithm::kMatch, web, 4, PatternKind::kCyclic, 14);
    add("disHHK", Algorithm::kDisHhk, std::move(web), 4, PatternKind::kCyclic,
        15);
  }
  {
    Rng rng(99);
    Graph dag = CitationDag(1200, 4800, kDefaultAlphabet, rng);
    add("dGPMd", Algorithm::kDgpmDag, std::move(dag), 6, PatternKind::kDag,
        16);
  }
  {
    Rng rng(5);
    Graph tree = RandomTree(900, kDefaultAlphabet, rng);
    add("dGPMt", Algorithm::kDgpmTree, std::move(tree), 4, PatternKind::kDag,
        17);
  }
  return families;
}

// The tentpole invariant: recovered chaos is observationally invisible.
// Every algorithm family × executor width {1, 2, 8} under a seeded
// drop/dup/reorder plan must reproduce the fault-free run bit for bit,
// and the chaos accounting itself must be width-invariant (the injector
// runs on the deterministic merge path).
TEST(ChaosRecoveryTest, RecoveredChaosIsBitIdenticalAcrossFamiliesAndWidths) {
  const uint64_t seed = ChaosSeed();
  for (Family& family : MakeFamilies()) {
    DistOptions options;
    options.algorithm = family.algorithm;
    options.num_threads = 1;
    options.transport = dgs::testing::EnvTransport();
    auto clean =
        DistributedMatch(family.g, family.assignment, family.sites, family.q,
                         options);
    ASSERT_TRUE(clean.ok()) << family.name;
    EXPECT_EQ(clean->faults.frames, 0u) << family.name
                                        << ": disabled plan must not count";

    options.faults = RecoveryPlan(seed);
    bool have_baseline_stats = false;
    FaultStats baseline_stats;
    for (uint32_t threads : {1u, 2u, 8u}) {
      options.num_threads = threads;
      auto chaos = DistributedMatch(family.g, family.assignment, family.sites,
                                    family.q, options);
      const std::string what = std::string(family.name) + " seed " +
                               std::to_string(seed) + " t" +
                               std::to_string(threads);
      ASSERT_TRUE(chaos.ok()) << what << ": " << chaos.status().ToString();
      EXPECT_TRUE(chaos->health.ok()) << what;
      ExpectSameOutcome(*chaos, *clean, what);

      // The plan really fired (0.3 drop over a whole run cannot miss), and
      // recovery healed everything: nothing lost, every duplicate caught.
      EXPECT_GT(chaos->faults.frames, 0u) << what;
      EXPECT_GT(chaos->faults.Injected(), 0u) << what;
      EXPECT_EQ(chaos->faults.lost, 0u) << what;
      EXPECT_EQ(chaos->faults.duplicates_discarded,
                chaos->faults.duplicates_injected)
          << what;
      EXPECT_EQ(chaos->faults.retransmits >= chaos->faults.drops, true)
          << what;

      if (!have_baseline_stats) {
        baseline_stats = chaos->faults;
        have_baseline_stats = true;
      } else {
        ExpectSameFaultStats(chaos->faults, baseline_stats, what);
      }
    }
  }
}

// Duplicate + reorder chaos alone (no drops) heals with zero retransmits:
// the sequence numbers carry the whole recovery.
TEST(ChaosRecoveryTest, DuplicateAndReorderChaosHealsWithoutRetransmits) {
  Rng rng(2014);
  Graph g = WebGraph(800, 3200, kDefaultAlphabet, rng);
  std::vector<uint32_t> assignment = PartitionWithBoundaryRatio(g, 4, 0.3, rng);
  PatternSpec spec;
  spec.num_nodes = 4;
  spec.num_edges = 6;
  spec.kind = PatternKind::kCyclic;
  auto q = ExtractPattern(g, spec, rng);
  ASSERT_TRUE(q.ok());

  DistOptions options;
  options.transport = dgs::testing::EnvTransport();
  auto clean = DistributedMatch(g, assignment, 4, *q, options);
  ASSERT_TRUE(clean.ok());

  options.faults.data.duplicate = 0.5;
  options.faults.data.reorder = 0.5;
  options.faults.control = options.faults.data;
  options.faults.result = options.faults.data;
  options.faults.seed = ChaosSeed();
  auto chaos = DistributedMatch(g, assignment, 4, *q, options);
  ASSERT_TRUE(chaos.ok());
  ExpectSameOutcome(*chaos, *clean, "dup+reorder");
  EXPECT_GT(chaos->faults.duplicates_injected, 0u);
  EXPECT_EQ(chaos->faults.duplicates_discarded,
            chaos->faults.duplicates_injected);
  EXPECT_EQ(chaos->faults.drops, 0u);
  EXPECT_EQ(chaos->faults.retransmits, 0u);
  EXPECT_EQ(chaos->faults.lost, 0u);
}

// Engine + chaos fixture for the failure-classification tests.
struct ServingRig {
  Graph g;
  std::vector<uint32_t> assignment;
  Pattern q;
  QueryOptions query;
  SimulationResult reference;
};

ServingRig MakeServingRig() {
  ServingRig rig;
  Rng rng(2014);
  rig.g = WebGraph(600, 2400, kDefaultAlphabet, rng);
  rig.assignment = PartitionWithBoundaryRatio(rig.g, 4, 0.3, rng);
  PatternSpec spec;
  spec.num_nodes = 4;
  spec.num_edges = 6;
  spec.kind = PatternKind::kCyclic;
  auto q = ExtractPattern(rig.g, spec, rng);
  DGS_CHECK(q.ok(), "pattern extraction failed");
  rig.q = std::move(*q);
  rig.query.algorithm = Algorithm::kDgpm;
  auto clean = DistributedMatch(rig.g, rig.assignment, 4, rig.q, {});
  DGS_CHECK(clean.ok(), "clean reference failed");
  rig.reference = clean->result;
  return rig;
}

// One budgeted corruption: the first mutated frame fails its checksum, the
// run is poisoned DataLoss, and the SAME resident Engine serves the next
// query cleanly (the fault budget is spent; the deployment survived).
TEST(ChaosFailureTest, CorruptionClassifiesDataLossAndEngineStaysUsable) {
  ServingRig rig = MakeServingRig();
  EngineOptions options = dgs::testing::TestEngineOptions();
  options.faults.data.corrupt = 1.0;
  options.faults.control.corrupt = 1.0;
  options.faults.result.corrupt = 1.0;
  options.faults.max_faults = 1;
  options.faults.seed = ChaosSeed();
  auto engine = Engine::Create(rig.g, rig.assignment, 4, options);
  ASSERT_TRUE(engine.ok());

  auto first = (*engine)->Match(rig.q, rig.query);
  ASSERT_FALSE(first.ok());
  EXPECT_EQ(first.status().code(), StatusCode::kDataLoss);

  auto second = (*engine)->Match(rig.q, rig.query);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_TRUE(second->result == rig.reference);
  EXPECT_TRUE(second->health.ok());
}

// Same contract for truncation: a shortened payload is a checksum reject,
// classified DataLoss, not an out-of-bounds read (ASan runs this in CI).
TEST(ChaosFailureTest, TruncationClassifiesDataLoss) {
  ServingRig rig = MakeServingRig();
  EngineOptions options = dgs::testing::TestEngineOptions();
  options.faults.data.truncate = 1.0;
  options.faults.control.truncate = 1.0;
  options.faults.result.truncate = 1.0;
  options.faults.max_faults = 1;
  options.faults.seed = ChaosSeed();
  auto engine = Engine::Create(rig.g, rig.assignment, 4, options);
  ASSERT_TRUE(engine.ok());

  auto first = (*engine)->Match(rig.q, rig.query);
  ASSERT_FALSE(first.ok());
  EXPECT_EQ(first.status().code(), StatusCode::kDataLoss);

  auto second = (*engine)->Match(rig.q, rig.query);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_TRUE(second->result == rig.reference);
}

// A site crash mid-run classifies Unavailable; with crash_once (the
// default, modeling a restart) the next run on the same Engine succeeds.
TEST(ChaosFailureTest, SiteCrashClassifiesUnavailableAndRestartRecovers) {
  ServingRig rig = MakeServingRig();
  EngineOptions options = dgs::testing::TestEngineOptions();
  options.faults.crash_site = 1;
  options.faults.crash_round = 1;
  options.faults.seed = ChaosSeed();
  auto engine = Engine::Create(rig.g, rig.assignment, 4, options);
  ASSERT_TRUE(engine.ok());

  auto first = (*engine)->Match(rig.q, rig.query);
  ASSERT_FALSE(first.ok());
  EXPECT_EQ(first.status().code(), StatusCode::kUnavailable);
  EXPECT_TRUE(IsRetryable(first.status().code()));

  auto second = (*engine)->Match(rig.q, rig.query);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_TRUE(second->result == rig.reference);
}

// The round watchdog converts a too-long run into DeadlineExceeded instead
// of spinning; the deployment stays usable at the honest bound.
TEST(ChaosFailureTest, WatchdogClassifiesDeadlineExceeded) {
  ServingRig rig = MakeServingRig();
  DistOptions options;
  options.transport = dgs::testing::EnvTransport();
  auto clean = DistributedMatch(rig.g, rig.assignment, 4, rig.q, options);
  ASSERT_TRUE(clean.ok());
  ASSERT_GT(clean->stats.rounds, 1u) << "need a multi-round run to bound";

  options.watchdog_rounds = 1;
  auto bounded = DistributedMatch(rig.g, rig.assignment, 4, rig.q, options);
  ASSERT_FALSE(bounded.ok());
  EXPECT_EQ(bounded.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(IsRetryable(bounded.status().code()));

  // An honest bound changes nothing.
  options.watchdog_rounds = clean->stats.rounds + 1;
  auto roomy = DistributedMatch(rig.g, rig.assignment, 4, rig.q, options);
  ASSERT_TRUE(roomy.ok());
  ExpectSameOutcome(*roomy, *clean, "honest watchdog bound");
}

// The low-level one-shot path surfaces the poisoned run as a PARTIAL
// outcome — classified health, empty result, exact decode accounting —
// rather than an error, so callers can inspect what drained.
TEST(ChaosFailureTest, PoisonedRunDrainsToPartialOutcome) {
  ServingRig rig = MakeServingRig();
  auto frag = Fragmentation::Create(rig.g, rig.assignment, 4);
  ASSERT_TRUE(frag.ok());

  ClusterOptions runtime = dgs::testing::TestClusterOptions();
  runtime.faults.data.truncate = 1.0;
  runtime.faults.control.truncate = 1.0;
  runtime.faults.result.truncate = 1.0;
  runtime.faults.max_faults = 1;
  runtime.faults.seed = ChaosSeed();

  DistOutcome outcome = RunDgpm(*frag, rig.q, DgpmConfig{}, runtime);
  EXPECT_TRUE(outcome.poisoned());
  EXPECT_EQ(outcome.health.code(), StatusCode::kDataLoss);
  EXPECT_FALSE(outcome.result.GraphMatches()) << "poisoned result is empty";
  EXPECT_EQ(outcome.faults.truncations, 1u);
  EXPECT_EQ(outcome.faults.checksum_rejects, 1u);
  const uint64_t total_decode_drops = outcome.decode_drops.data +
                                      outcome.decode_drops.control +
                                      outcome.decode_drops.result;
  EXPECT_EQ(total_decode_drops, 1u);
}

// Without recovery, mutated frames are DELIVERED: the fail-soft decoders
// (core/protocol.h hardening) must classify garbage as a poisoned run or
// decode a payload that happens to stay well-formed — never crash or read
// out of bounds. Swept over several fixed seeds; ASan+UBSan cover this in
// CI. Restricted to corrupt/truncate: unrecovered drops can stall a
// conversation forever, which is the watchdog's job, not this test's.
TEST(ChaosFailureTest, NoRecoveryChaosFailsSoft) {
  ServingRig rig = MakeServingRig();
  const uint64_t base = ChaosSeed();
  for (uint64_t offset = 0; offset < 3; ++offset) {
    DistOptions options;
    options.transport = dgs::testing::EnvTransport();
    options.faults.data.corrupt = 0.4;
    options.faults.data.truncate = 0.3;
    options.faults.control = options.faults.data;
    options.faults.result = options.faults.data;
    options.faults.recovery = false;
    options.faults.seed = base + offset;
    options.watchdog_rounds = 10000;  // backstop: garbage must not livelock
    auto outcome = DistributedMatch(rig.g, rig.assignment, 4, rig.q, options);
    if (outcome.ok()) continue;  // every mutation decoded; fine
    EXPECT_TRUE(outcome.status().code() == StatusCode::kDataLoss ||
                outcome.status().code() == StatusCode::kDeadlineExceeded)
        << "seed " << (base + offset) << ": "
        << outcome.status().ToString();
  }
}

// dgs::Server + RetryOptions close the loop: a crash-poisoned attempt is
// retryable, the retry faces a restarted site (crash_once) with a freshly
// reseeded schedule, and the client sees only the clean answer.
TEST(ChaosServerTest, RetryRecoversCrashPoisonedQueries) {
  ServingRig rig = MakeServingRig();
  ServerOptions options;
  options.engine = dgs::testing::TestEngineOptions();
  options.num_replicas = 1;  // one injector: the crash fires exactly once
  options.engine.faults.crash_site = 1;
  options.engine.faults.crash_round = 1;
  options.engine.faults.seed = ChaosSeed();
  options.retry.max_attempts = 3;
  auto server = Server::Create(rig.g, rig.assignment, 4, options);
  ASSERT_TRUE(server.ok());

  auto outcome = (*server)->Match(rig.q, rig.query);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_TRUE(outcome->result == rig.reference);

  (*server)->Shutdown();
  ServerStats stats = (*server)->stats();
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_GE(stats.retries, 1u);
  EXPECT_GE(stats.retry_successes, 1u);
  EXPECT_EQ(stats.served, 1u);
}

// Without a retry budget the same crash surfaces to the client unchanged.
TEST(ChaosServerTest, CrashWithoutRetryBudgetSurfacesUnavailable) {
  ServingRig rig = MakeServingRig();
  ServerOptions options;
  options.engine = dgs::testing::TestEngineOptions();
  options.num_replicas = 1;
  options.engine.faults.crash_site = 1;
  options.engine.faults.crash_round = 1;
  options.engine.faults.seed = ChaosSeed();
  auto server = Server::Create(rig.g, rig.assignment, 4, options);
  ASSERT_TRUE(server.ok());

  auto first = (*server)->Match(rig.q, rig.query);
  ASSERT_FALSE(first.ok());
  EXPECT_EQ(first.status().code(), StatusCode::kUnavailable);

  // The crash fired once; the deployment itself is healthy.
  auto second = (*server)->Match(rig.q, rig.query);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_TRUE(second->result == rig.reference);

  (*server)->Shutdown();
  ServerStats stats = (*server)->stats();
  EXPECT_EQ(stats.failed, 1u);
  EXPECT_EQ(stats.retries, 0u);
}

// --fault-spec grammar (examples/dgsim_cli.cc drives this parser).
TEST(ChaosSpecTest, ParsesUniformAndClassScopedEntries) {
  auto plan = ParseFaultSpec("drop=0.3,dup=0.2,reorder=0.1,retries=16");
  ASSERT_TRUE(plan.ok());
  EXPECT_DOUBLE_EQ(plan->data.drop, 0.3);
  EXPECT_DOUBLE_EQ(plan->control.drop, 0.3);
  EXPECT_DOUBLE_EQ(plan->result.drop, 0.3);
  EXPECT_DOUBLE_EQ(plan->data.duplicate, 0.2);
  EXPECT_DOUBLE_EQ(plan->data.reorder, 0.1);
  EXPECT_EQ(plan->max_retries, 16u);
  EXPECT_TRUE(plan->recovery);
  EXPECT_TRUE(plan->enabled());

  auto scoped = ParseFaultSpec("data.corrupt=0.5,control.truncate=0.25");
  ASSERT_TRUE(scoped.ok());
  EXPECT_DOUBLE_EQ(scoped->data.corrupt, 0.5);
  EXPECT_DOUBLE_EQ(scoped->control.corrupt, 0.0);
  EXPECT_DOUBLE_EQ(scoped->control.truncate, 0.25);
  EXPECT_DOUBLE_EQ(scoped->data.truncate, 0.0);
}

TEST(ChaosSpecTest, ParsesCrashSeedBudgetAndRecoveryKnobs) {
  auto plan = ParseFaultSpec(
      "crash=2@5,seed=42,maxfaults=3,backoff=0.125,norecover");
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->crash_site, 2);
  EXPECT_EQ(plan->crash_round, 5u);
  EXPECT_EQ(plan->seed, 42u);
  EXPECT_EQ(plan->max_faults, 3u);
  EXPECT_DOUBLE_EQ(plan->backoff_seconds, 0.125);
  EXPECT_FALSE(plan->recovery);
  EXPECT_TRUE(plan->enabled());

  auto bare_crash = ParseFaultSpec("crash=1,recovery=1");
  ASSERT_TRUE(bare_crash.ok());
  EXPECT_EQ(bare_crash->crash_site, 1);
  EXPECT_EQ(bare_crash->crash_round, 1u);
  EXPECT_TRUE(bare_crash->recovery);

  auto empty = ParseFaultSpec("");
  ASSERT_TRUE(empty.ok());
  EXPECT_FALSE(empty->enabled());
}

TEST(ChaosSpecTest, RejectsMalformedSpecs) {
  for (const char* bad :
       {"drop", "drop=", "drop=2", "drop=-0.1", "drop=abc", "bogus=0.5",
        "wire.drop=0.5", "retries=notanumber", "crash=@3", "crash=1@0",
        "recovery=maybe"}) {
    auto plan = ParseFaultSpec(bad);
    EXPECT_FALSE(plan.ok()) << bad;
    if (!plan.ok()) {
      EXPECT_EQ(plan.status().code(), StatusCode::kInvalidArgument) << bad;
    }
  }
}

TEST(ChaosSpecTest, PlanToStringRoundTrips) {
  const char* specs[] = {
      "drop=0.3,dup=0.2,reorder=0.1,retries=16",
      "data.corrupt=0.5,control.truncate=0.25,seed=9",
      "crash=2@5,maxfaults=3,norecover",
  };
  for (const char* spec : specs) {
    auto plan = ParseFaultSpec(spec);
    ASSERT_TRUE(plan.ok()) << spec;
    const std::string printed = FaultPlanToString(*plan);
    auto reparsed = ParseFaultSpec(printed);
    ASSERT_TRUE(reparsed.ok()) << spec << " -> " << printed;
    EXPECT_EQ(FaultPlanToString(*reparsed), printed) << spec;
  }
  FaultPlan off;
  EXPECT_EQ(FaultPlanToString(off), "off");
}

}  // namespace
}  // namespace dgs
