// AdmissionQueue semantics: bounded overload rejection, FIFO vs priority
// dispatch order, close-and-drain, and producer/consumer blocking.

#include "serve/admission.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace dgs {
namespace {

TEST(AdmissionQueueTest, FifoDispatchesInArrivalOrder) {
  AdmissionQueue<int> queue(8, AdmissionPolicy::kFifo);
  // Priorities must be ignored under kFifo.
  ASSERT_TRUE(queue.Push(1, /*priority=*/-5).ok());
  ASSERT_TRUE(queue.Push(2, /*priority=*/100).ok());
  ASSERT_TRUE(queue.Push(3, /*priority=*/7).ok());
  int out = 0;
  for (int expected : {1, 2, 3}) {
    ASSERT_TRUE(queue.Pop(&out));
    EXPECT_EQ(out, expected);
  }
}

TEST(AdmissionQueueTest, PriorityDispatchesHighFirstTiesFifo) {
  AdmissionQueue<int> queue(8, AdmissionPolicy::kPriority);
  ASSERT_TRUE(queue.Push(1, 0).ok());
  ASSERT_TRUE(queue.Push(2, 10).ok());
  ASSERT_TRUE(queue.Push(3, 0).ok());
  ASSERT_TRUE(queue.Push(4, 10).ok());
  ASSERT_TRUE(queue.Push(5, -3).ok());
  int out = 0;
  for (int expected : {2, 4, 1, 3, 5}) {
    ASSERT_TRUE(queue.Pop(&out));
    EXPECT_EQ(out, expected) << "priority order with FIFO ties";
  }
}

TEST(AdmissionQueueTest, OverflowRejectsWithResourceExhausted) {
  AdmissionQueue<int> queue(2, AdmissionPolicy::kFifo);
  EXPECT_TRUE(queue.Push(1).ok());
  EXPECT_TRUE(queue.Push(2).ok());
  Status rejected = queue.Push(3);
  EXPECT_EQ(rejected.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(queue.size(), 2u);
  // Draining one slot re-opens admission.
  int out = 0;
  ASSERT_TRUE(queue.Pop(&out));
  EXPECT_TRUE(queue.Push(3).ok());
}

TEST(AdmissionQueueTest, CapacityZeroClampsToOne) {
  AdmissionQueue<int> queue(0, AdmissionPolicy::kFifo);
  EXPECT_EQ(queue.capacity(), 1u);
  EXPECT_TRUE(queue.Push(1).ok());
  EXPECT_EQ(queue.Push(2).code(), StatusCode::kResourceExhausted);
}

TEST(AdmissionQueueTest, CloseRejectsPushesButDrainsBacklog) {
  AdmissionQueue<int> queue(8, AdmissionPolicy::kFifo);
  ASSERT_TRUE(queue.Push(1).ok());
  ASSERT_TRUE(queue.Push(2).ok());
  queue.Close();
  EXPECT_TRUE(queue.closed());
  EXPECT_EQ(queue.Push(3).code(), StatusCode::kUnavailable);
  int out = 0;
  ASSERT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, 1);
  ASSERT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, 2);
  // Closed and drained: Pop returns false instead of blocking.
  EXPECT_FALSE(queue.Pop(&out));
  EXPECT_FALSE(queue.Pop(&out));  // stays terminal
}

TEST(AdmissionQueueTest, PopBlocksUntilPushOrClose) {
  AdmissionQueue<int> queue(4, AdmissionPolicy::kFifo);
  std::atomic<int> got{-1};
  std::thread consumer([&] {
    int out = 0;
    if (queue.Pop(&out)) got.store(out);
  });
  ASSERT_TRUE(queue.Push(42).ok());
  consumer.join();
  EXPECT_EQ(got.load(), 42);

  std::atomic<bool> returned_false{false};
  std::thread blocked([&] {
    int out = 0;
    returned_false.store(!queue.Pop(&out));
  });
  queue.Close();
  blocked.join();
  EXPECT_TRUE(returned_false.load());
}

TEST(AdmissionQueueTest, ConcurrentProducersConsumersDeliverEverythingOnce) {
  AdmissionQueue<int> queue(1024, AdmissionPolicy::kFifo);
  constexpr int kProducers = 4, kConsumers = 3, kPerProducer = 200;
  std::vector<std::atomic<int>> seen(kProducers * kPerProducer);
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(queue.Push(p * kPerProducer + i).ok());
      }
    });
  }
  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      int out = 0;
      while (queue.Pop(&out)) seen[out].fetch_add(1);
    });
  }
  for (auto& t : threads) t.join();
  queue.Close();
  for (auto& t : consumers) t.join();
  for (const auto& count : seen) EXPECT_EQ(count.load(), 1);
  EXPECT_GE(queue.peak_depth(), 1u);
  EXPECT_LE(queue.peak_depth(), 1024u);
}

}  // namespace
}  // namespace dgs
