#include "core/dgpm_dag.h"

#include <gtest/gtest.h>

#include "core/baselines.h"
#include "graph/generators.h"
#include "partition/partitioner.h"
#include "simulation/simulation.h"

namespace dgs {
namespace {

Fragmentation MustFragment(const Graph& g,
                           const std::vector<uint32_t>& assignment,
                           uint32_t n) {
  auto f = Fragmentation::Create(g, assignment, n);
  DGS_CHECK(f.ok(), "fragmentation failed");
  return std::move(f).value();
}

// Example 9/10: dGPM ships 12 truth values (the paper's "12 messages" — its
// dGPM sends one per variable); dGPMd ships the same falses in at most 6
// rank batches. Our dGPM also coalesces per destination per round, so the
// physical-message comparison is <=, not <.
TEST(DgpmDagTest, Fig5MessageCounts) {
  auto ex = MakeDagExample();
  auto frag = MustFragment(ex.g, ex.assignment, 5);

  DgpmConfig plain;
  plain.enable_push = false;
  auto dgpm = RunDgpm(frag, ex.q, plain);
  EXPECT_FALSE(dgpm.result.GraphMatches());
  EXPECT_EQ(dgpm.counters.vars_shipped, 12u);

  auto dagd = RunDgpmDag(frag, ex.q, ex.g, DgpmDagConfig{});
  EXPECT_FALSE(dagd.result.GraphMatches());
  EXPECT_EQ(dagd.counters.vars_shipped, 12u);
  EXPECT_EQ(dagd.stats.data_messages, 6u);  // "at most 6 messages" (Ex. 10)
  EXPECT_LE(dagd.stats.data_messages, dgpm.stats.data_messages);
}

TEST(DgpmDagTest, MatchesCentralizedOnCitationGraphs) {
  Rng rng(91);
  Graph g = CitationDag(2000, 5000, 8, rng);
  for (uint32_t depth = 2; depth <= 5; ++depth) {
    PatternSpec spec;
    spec.num_nodes = depth + 3;
    spec.num_edges = depth + 6;
    spec.kind = PatternKind::kDag;
    spec.dag_depth = depth;
    auto q = ExtractPattern(g, spec, rng);
    ASSERT_TRUE(q.ok());
    auto frag = MustFragment(g, RandomPartition(g, 6, rng), 6);
    auto outcome = RunDgpmDag(frag, *q, g, DgpmDagConfig{});
    EXPECT_TRUE(outcome.result == ComputeSimulation(*q, g))
        << "depth " << depth;
    EXPECT_TRUE(outcome.result.GraphMatches());
  }
}

TEST(DgpmDagTest, DagPatternOnCyclicGraph) {
  // dGPMd only needs Q to be a DAG; G may be cyclic.
  Rng rng(93);
  Graph g = WebGraph(1500, 6000, 6, rng);
  PatternSpec spec;
  spec.num_nodes = 6;
  spec.num_edges = 8;
  spec.kind = PatternKind::kDag;
  spec.dag_depth = 3;
  auto q = ExtractPattern(g, spec, rng);
  ASSERT_TRUE(q.ok());
  auto frag = MustFragment(g, RandomPartition(g, 5, rng), 5);
  auto outcome = RunDgpmDag(frag, *q, g, DgpmDagConfig{});
  EXPECT_TRUE(outcome.result == ComputeSimulation(*q, g));
}

TEST(DgpmDagTest, CyclicPatternOnDagShortCircuits) {
  Rng rng(95);
  Graph g = CitationDag(500, 1500, 5, rng);
  Pattern q(MakeGraph({0, 1}, {{0, 1}, {1, 0}}));
  auto frag = MustFragment(g, RandomPartition(g, 4, rng), 4);
  auto outcome = RunDgpmDag(frag, q, g, DgpmDagConfig{});
  EXPECT_FALSE(outcome.result.GraphMatches());
  EXPECT_EQ(outcome.stats.data_bytes, 0u);  // no distributed work at all
  EXPECT_EQ(outcome.stats.rounds, 0u);
}

TEST(DgpmDagTest, MessageBatchesBoundedByDepthTimesPairs) {
  Rng rng(97);
  Graph g = CitationDag(3000, 9000, 6, rng);
  PatternSpec spec;
  spec.num_nodes = 7;
  spec.num_edges = 10;
  spec.kind = PatternKind::kDag;
  spec.dag_depth = 4;
  auto q = ExtractPattern(g, spec, rng);
  ASSERT_TRUE(q.ok());
  const uint32_t sites = 6;
  auto frag = MustFragment(g, RandomPartition(g, sites, rng), sites);
  auto outcome = RunDgpmDag(frag, *q, g, DgpmDagConfig{});
  // At most one batch per ordered site pair per rank (Section 5.1).
  uint64_t bound = static_cast<uint64_t>(sites) * (sites - 1) *
                   (q->MaxRank() + 1);
  EXPECT_LE(outcome.stats.data_messages, bound);
  EXPECT_TRUE(outcome.result == ComputeSimulation(*q, g));
}

TEST(DgpmDagTest, BooleanMode) {
  auto ex = MakeDagExample();
  auto frag = MustFragment(ex.g, ex.assignment, 5);
  DgpmDagConfig config;
  config.boolean_only = true;
  auto outcome = RunDgpmDag(frag, ex.q, ex.g, config);
  EXPECT_FALSE(outcome.result.GraphMatches());
}

TEST(DgpmDagTest, SameShipmentVolumeAsDgpm) {
  // dGPMd ships the same truth values as dGPM, just batched (Section 5.1):
  // vars_shipped must match on identical inputs.
  Rng rng(99);
  Graph g = CitationDag(1000, 2500, 5, rng);
  PatternSpec spec;
  spec.num_nodes = 6;
  spec.num_edges = 9;
  spec.kind = PatternKind::kDag;
  spec.dag_depth = 3;
  auto q = ExtractPattern(g, spec, rng);
  ASSERT_TRUE(q.ok());
  auto frag = MustFragment(g, RandomPartition(g, 4, rng), 4);
  DgpmConfig plain;
  plain.enable_push = false;
  auto a = RunDgpm(frag, *q, plain);
  auto b = RunDgpmDag(frag, *q, g, DgpmDagConfig{});
  EXPECT_TRUE(a.result == b.result);
  EXPECT_EQ(a.counters.vars_shipped, b.counters.vars_shipped);
  // dGPMd's physical messages obey the rank-batching bound. (It can emit
  // more batches than round-coalescing dGPM when quiescence flushes split a
  // rank, so no direct <= comparison against dGPM's count.)
  EXPECT_LE(b.stats.data_messages, 4ull * 4ull * (q->MaxRank() + 1));
}

}  // namespace
}  // namespace dgs
