#include "core/dgpm.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "partition/partitioner.h"
#include "simulation/simulation.h"

namespace dgs {
namespace {

Fragmentation MustFragment(const Graph& g,
                           const std::vector<uint32_t>& assignment,
                           uint32_t n) {
  auto f = Fragmentation::Create(g, assignment, n);
  DGS_CHECK(f.ok(), "fragmentation failed");
  return std::move(f).value();
}

TEST(DgpmTest, SocialExampleAllOptimizationCombos) {
  auto ex = MakeSocialExample();
  auto frag = MustFragment(ex.g, ex.assignment, 3);
  auto expected = ComputeSimulation(ex.q, ex.g);

  for (bool incremental : {true, false}) {
    for (bool push : {true, false}) {
      DgpmConfig config;
      config.incremental = incremental;
      config.enable_push = push;
      auto outcome = RunDgpm(frag, ex.q, config);
      EXPECT_TRUE(outcome.result == expected)
          << "incremental=" << incremental << " push=" << push;
      EXPECT_TRUE(outcome.result.GraphMatches());
    }
  }
}

TEST(DgpmTest, SingleFragmentNeedsNoDataShipment) {
  auto ex = MakeSocialExample();
  auto frag = MustFragment(ex.g, std::vector<uint32_t>(13, 0), 1);
  auto outcome = RunDgpm(frag, ex.q, DgpmConfig{});
  EXPECT_TRUE(outcome.result == ComputeSimulation(ex.q, ex.g));
  EXPECT_EQ(outcome.stats.data_bytes, 0u);
  EXPECT_EQ(outcome.counters.vars_shipped, 0u);
}

TEST(DgpmTest, BrokenCycleRefutationPropagates) {
  // The broken locality gadget: nothing matches, and discovering that
  // requires falses to travel around the (cut) cycle.
  auto gadget = MakeLocalityGadget(6, /*broken=*/true);
  auto frag = MustFragment(gadget.g, gadget.assignment, 6);
  DgpmConfig config;
  config.enable_push = false;
  auto outcome = RunDgpm(frag, gadget.q, config);
  EXPECT_FALSE(outcome.result.GraphMatches());
  EXPECT_EQ(outcome.result.RelationSize(), 0u);
  EXPECT_GT(outcome.counters.vars_shipped, 0u);
}

TEST(DgpmTest, IntactCycleEverythingMatchesWithoutShipment) {
  // The intact gadget: the greatest fixpoint keeps every variable, so no
  // falses exist and dGPM ships no data at all (trues are implicit).
  auto gadget = MakeLocalityGadget(6);
  auto frag = MustFragment(gadget.g, gadget.assignment, 6);
  DgpmConfig config;
  config.enable_push = false;
  auto outcome = RunDgpm(frag, gadget.q, config);
  EXPECT_TRUE(outcome.result.GraphMatches());
  EXPECT_EQ(outcome.counters.vars_shipped, 0u);
}

TEST(DgpmTest, BooleanModeAgreesAndShipsLessResultData) {
  auto ex = MakeSocialExample();
  auto frag = MustFragment(ex.g, ex.assignment, 3);
  DgpmConfig selecting;
  DgpmConfig boolean;
  boolean.boolean_only = true;
  auto sel = RunDgpm(frag, ex.q, selecting);
  auto bol = RunDgpm(frag, ex.q, boolean);
  EXPECT_EQ(sel.result.GraphMatches(), bol.result.GraphMatches());
  EXPECT_LT(bol.stats.result_bytes, sel.stats.result_bytes);
}

TEST(DgpmTest, PushForcedOnStillCorrect) {
  Rng rng(81);
  Graph g = WebGraph(800, 3200, 6, rng);
  auto assignment = RandomPartition(g, 5, rng);
  auto frag = MustFragment(g, assignment, 5);
  PatternSpec spec;
  spec.num_nodes = 4;
  spec.num_edges = 6;
  spec.kind = PatternKind::kCyclic;
  auto q = ExtractPattern(g, spec, rng);
  ASSERT_TRUE(q.ok());

  DgpmConfig config;
  config.enable_push = true;
  config.push_threshold = 0.0;  // push everywhere
  auto outcome = RunDgpm(frag, *q, config);
  EXPECT_TRUE(outcome.result == ComputeSimulation(*q, g));
  EXPECT_GT(outcome.counters.push_count, 0u);
  EXPECT_GT(outcome.counters.equation_units, 0u);
}

TEST(DgpmTest, PushDisabledByHugeThreshold) {
  Rng rng(83);
  Graph g = WebGraph(500, 2000, 6, rng);
  auto frag = MustFragment(g, RandomPartition(g, 4, rng), 4);
  PatternSpec spec;
  spec.kind = PatternKind::kCyclic;
  auto q = ExtractPattern(g, spec, rng);
  ASSERT_TRUE(q.ok());
  DgpmConfig config;
  config.push_threshold = 1e18;
  auto outcome = RunDgpm(frag, *q, config);
  EXPECT_EQ(outcome.counters.push_count, 0u);
  EXPECT_TRUE(outcome.result == ComputeSimulation(*q, g));
}

TEST(DgpmTest, NoOptPerformsMoreRecomputations) {
  auto gadget = MakeLocalityGadget(8, /*broken=*/true);
  auto frag = MustFragment(gadget.g, gadget.assignment, 8);
  DgpmConfig opt;
  opt.enable_push = false;
  DgpmConfig noopt;
  noopt.incremental = false;
  noopt.enable_push = false;
  auto a = RunDgpm(frag, gadget.q, opt);
  auto b = RunDgpm(frag, gadget.q, noopt);
  EXPECT_TRUE(a.result == b.result);
  EXPECT_GT(b.counters.recomputations, a.counters.recomputations);
  // Incremental mode recomputes exactly once per site (at Setup).
  EXPECT_EQ(a.counters.recomputations, 8u);
}

TEST(DgpmTest, PushSubscriptionBypassesTheChain) {
  // A 4-deep chain query over a 4-node chain graph, one node per site, with
  // push forced on: site 1 pushes its equation to site 0, which then
  // subscribes to site 2 directly. The refutation (node 3's absence of a
  // child... node 3 is a sink, so instead break the chain at the end) must
  // reach site 0 regardless of the routing. We break the data chain by
  // removing the last edge so X(c, node2) is false at site 2.
  Pattern q(MakeGraph({0, 1, 2, 3}, {{0, 1}, {1, 2}, {2, 3}}));
  Graph g = MakeGraph({0, 1, 2, 3}, {{0, 1}, {1, 2}});  // edge (2,3) missing
  auto frag = MustFragment(g, {0, 1, 2, 3}, 4);
  DgpmConfig push_on;
  push_on.enable_push = true;
  push_on.push_threshold = 0.0;
  auto with_push = RunDgpm(frag, q, push_on);
  DgpmConfig push_off;
  push_off.enable_push = false;
  auto without = RunDgpm(frag, q, push_off);
  EXPECT_TRUE(with_push.result == without.result);
  EXPECT_FALSE(with_push.result.GraphMatches());
  EXPECT_GT(with_push.counters.push_count, 0u);
  // The subscription shortcut cannot use more refinement rounds than the
  // hop-by-hop route.
  EXPECT_LE(with_push.stats.rounds, without.stats.rounds + 1);
}

TEST(DgpmTest, BooleanAgreesAcrossAllRandomInputs) {
  Rng rng(87);
  for (int trial = 0; trial < 10; ++trial) {
    Graph g = RandomGraph(150, 600, 3, rng);
    auto frag = MustFragment(g, RandomPartition(g, 5, rng), 5);
    PatternSpec spec;
    spec.num_nodes = 4;
    spec.num_edges = 6;
    spec.kind = PatternKind::kAny;
    Pattern q = SynthesizePattern(spec, 3, rng);
    bool expected = ComputeSimulation(q, g).GraphMatches();
    DgpmConfig boolean;
    boolean.boolean_only = true;
    EXPECT_EQ(RunDgpm(frag, q, boolean).result.GraphMatches(), expected)
        << "trial " << trial;
  }
}

TEST(DgpmTest, EmptyPatternAnswerOnLabelMiss) {
  // Query label absent from G entirely.
  auto ex = MakeSocialExample();
  auto frag = MustFragment(ex.g, ex.assignment, 3);
  Pattern q(MakeGraph({9}, {}));
  auto outcome = RunDgpm(frag, q, DgpmConfig{});
  EXPECT_FALSE(outcome.result.GraphMatches());
  EXPECT_EQ(outcome.result.RelationSize(), 0u);
}

TEST(DgpmTest, ManyFragmentsIncludingEmpty) {
  auto ex = MakeSocialExample();
  // Spread 13 nodes over 13 sites; site count 16 leaves empties.
  std::vector<uint32_t> assignment(13);
  for (NodeId v = 0; v < 13; ++v) assignment[v] = v;
  auto frag = MustFragment(ex.g, assignment, 16);
  auto outcome = RunDgpm(frag, ex.q, DgpmConfig{});
  EXPECT_TRUE(outcome.result == ComputeSimulation(ex.q, ex.g));
}

}  // namespace
}  // namespace dgs
