#include "simulation/isomorphism.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "simulation/simulation.h"

namespace dgs {
namespace {

// Validates that `m` really is an embedding of q in g.
void CheckEmbedding(const Pattern& q, const Graph& g,
                    const std::vector<NodeId>& m) {
  ASSERT_EQ(m.size(), q.NumNodes());
  for (NodeId u = 0; u < q.NumNodes(); ++u) {
    EXPECT_EQ(q.LabelOf(u), g.LabelOf(m[u]));
    for (NodeId u2 = 0; u2 < q.NumNodes(); ++u2) {
      if (u != u2) {
        EXPECT_NE(m[u], m[u2]) << "not injective";
      }
    }
    for (NodeId uc : q.Children(u)) {
      EXPECT_TRUE(g.HasEdge(m[u], m[uc]));
    }
  }
}

TEST(IsomorphismTest, FindsTriangle) {
  Pattern q(MakeGraph({0, 1, 2}, {{0, 1}, {1, 2}, {2, 0}}));
  Graph g = MakeGraph({0, 1, 2, 0}, {{0, 1}, {1, 2}, {2, 0}, {3, 1}});
  auto m = FindSubgraphIsomorphism(q, g);
  ASSERT_TRUE(m.has_value());
  CheckEmbedding(q, g, *m);
}

TEST(IsomorphismTest, RespectsLabels) {
  Pattern q(MakeGraph({5, 6}, {{0, 1}}));
  Graph g = MakeGraph({5, 7}, {{0, 1}});
  EXPECT_FALSE(FindSubgraphIsomorphism(q, g).has_value());
}

TEST(IsomorphismTest, RequiresInjectivity) {
  // Q: two distinct a-children of one b. Data has only one a-child.
  Pattern q(MakeGraph({1, 0, 0}, {{0, 1}, {0, 2}}));
  Graph g = MakeGraph({1, 0}, {{0, 1}});
  EXPECT_FALSE(FindSubgraphIsomorphism(q, g).has_value());
  // Simulation happily maps both query a-nodes to the same data node.
  EXPECT_TRUE(ComputeSimulation(q, g).GraphMatches());
}

TEST(IsomorphismTest, Example3GadgetContrast) {
  // The heart of Example 3: Q0 (the 2-cycle) simulation-matches the
  // stretched 2n-cycle G0, but no subgraph of G0 is isomorphic to Q0.
  auto gadget = MakeLocalityGadget(6);
  EXPECT_TRUE(ComputeSimulation(gadget.q, gadget.g).GraphMatches());
  EXPECT_FALSE(FindSubgraphIsomorphism(gadget.q, gadget.g).has_value());
}

TEST(IsomorphismTest, SocialExampleHasNoEmbedding) {
  // The Example 1 scenario is exactly where isomorphism is too strict: the
  // recommendation cycle in Fig. 1 is "stretched" across nodes (sp2's YF
  // successor is yf3, never the yf2 that fed f3), so no one-to-one
  // embedding of Q exists even though simulation matches every query node.
  auto ex = MakeSocialExample();
  EXPECT_FALSE(FindSubgraphIsomorphism(ex.q, ex.g).has_value());
  EXPECT_TRUE(ComputeSimulation(ex.q, ex.g).GraphMatches());
}

TEST(IsomorphismTest, MatchAtPinsTheMapping) {
  // Pinning: in the triangle fixture, node 0 embeds as query node 0 and
  // node 3 (an 'a' off the cycle) does not.
  Pattern q(MakeGraph({0, 1, 2}, {{0, 1}, {1, 2}, {2, 0}}));
  Graph g = MakeGraph({0, 1, 2, 0}, {{0, 1}, {1, 2}, {2, 0}, {3, 1}});
  EXPECT_TRUE(IsomorphicMatchAt(q, g, 0, 0));
  EXPECT_FALSE(IsomorphicMatchAt(q, g, 0, 3));
  EXPECT_FALSE(IsomorphicMatchAt(q, g, 0, 1));  // wrong label
  EXPECT_FALSE(IsomorphicMatchAt(q, g, 99, 0));  // out-of-range query node
}

TEST(IsomorphismTest, EmbeddingImpliesSimulationMatch) {
  // Soundness cross-check on random inputs: whenever an embedding exists,
  // simulation must also match (the converse fails, per the gadget).
  Rng rng(701);
  for (int trial = 0; trial < 10; ++trial) {
    Graph g = RandomGraph(50, 200, 3, rng);
    PatternSpec spec;
    spec.num_nodes = 3;
    spec.num_edges = 4;
    spec.kind = PatternKind::kAny;
    Pattern q = SynthesizePattern(spec, 3, rng);
    auto m = FindSubgraphIsomorphism(q, g);
    if (m.has_value()) {
      CheckEmbedding(q, g, *m);
      EXPECT_TRUE(ComputeSimulation(q, g).GraphMatches());
    }
  }
}

TEST(IsomorphismTest, ExtractedPatternsAlwaysEmbed) {
  // ExtractPattern returns subgraphs of g, so an embedding always exists.
  Rng rng(703);
  Graph g = WebGraph(500, 2500, 5, rng);
  for (int trial = 0; trial < 5; ++trial) {
    PatternSpec spec;
    spec.num_nodes = 4;
    spec.num_edges = 6;
    spec.kind = PatternKind::kCyclic;
    auto q = ExtractPattern(g, spec, rng);
    if (!q.ok()) continue;
    auto m = FindSubgraphIsomorphism(*q, g);
    ASSERT_TRUE(m.has_value());
    CheckEmbedding(*q, g, *m);
  }
}

}  // namespace
}  // namespace dgs
