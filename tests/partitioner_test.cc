#include "partition/partitioner.h"

#include <gtest/gtest.h>

#include <set>

#include "graph/algorithms.h"
#include "graph/generators.h"
#include "partition/fragmentation.h"
#include "partition/stats.h"

namespace dgs {
namespace {

TEST(PartitionerTest, RandomPartitionCoversAllFragments) {
  Rng rng(41);
  Graph g = RandomGraph(1000, 3000, 5, rng);
  auto a = RandomPartition(g, 8, rng);
  ASSERT_EQ(a.size(), 1000u);
  std::set<uint32_t> used(a.begin(), a.end());
  EXPECT_EQ(used.size(), 8u);
  for (uint32_t x : a) EXPECT_LT(x, 8u);
}

TEST(PartitionerTest, HashPartitionIsDeterministic) {
  Rng rng(43);
  Graph g = RandomGraph(500, 1000, 5, rng);
  EXPECT_EQ(HashPartition(g, 4), HashPartition(g, 4));
}

TEST(PartitionerTest, ContiguousPartitionIsBalanced) {
  Rng rng(47);
  Graph g = WebGraph(2000, 8000, 8, rng);
  auto a = ContiguousPartition(g, 5, rng);
  std::vector<size_t> sizes(5, 0);
  for (uint32_t x : a) ++sizes[x];
  for (size_t s : sizes) {
    EXPECT_GT(s, 0u);
    EXPECT_LE(s, 2000u / 5 + 1);
  }
}

TEST(PartitionerTest, ContiguousBeatsRandomOnBoundary) {
  Rng rng(53);
  Graph g = WebGraph(3000, 12000, 8, rng);
  auto contiguous = ContiguousPartition(g, 6, rng);
  auto random = RandomPartition(g, 6, rng);
  EXPECT_LT(BoundaryNodeRatio(g, contiguous), BoundaryNodeRatio(g, random));
}

TEST(PartitionerTest, RangePartitionBlocks) {
  Rng rng(48);
  Graph g = RandomGraph(100, 200, 3, rng);
  auto a = RangePartition(g, 4);
  ASSERT_EQ(a.size(), 100u);
  EXPECT_EQ(a[0], 0u);
  EXPECT_EQ(a[24], 0u);
  EXPECT_EQ(a[25], 1u);
  EXPECT_EQ(a[99], 3u);
  // Balanced within one block.
  std::vector<size_t> sizes(4, 0);
  for (uint32_t x : a) ++sizes[x];
  for (size_t s : sizes) EXPECT_EQ(s, 25u);
}

TEST(PartitionerTest, RangePartitionBeatsRandomOnLocalityGraphs) {
  Rng rng(49);
  Graph g = ClusteredGraph(3000, 12000, 6, rng);
  EXPECT_LT(BoundaryNodeRatio(g, RangePartition(g, 6)),
            BoundaryNodeRatio(g, RandomPartition(g, 6, rng)));
}

TEST(PartitionerTest, BoundaryRatioOfTrivialPartitions) {
  Graph g = MakeGraph({0, 0, 0}, {{0, 1}, {1, 2}});
  EXPECT_EQ(BoundaryNodeRatio(g, {0, 0, 0}), 0.0);
  // Split {0} | {1, 2}: node 1 is a boundary node.
  EXPECT_NEAR(BoundaryNodeRatio(g, {0, 1, 1}), 1.0 / 3, 1e-9);
  EXPECT_NEAR(CrossingEdgeRatio(g, {0, 1, 1}), 0.5, 1e-9);
}

class BoundaryRatioSweep : public ::testing::TestWithParam<double> {};

TEST_P(BoundaryRatioSweep, HitsTarget) {
  const double target = GetParam();
  Rng rng(59);
  Graph g = WebGraph(4000, 16000, 8, rng);
  auto a = PartitionWithBoundaryRatio(g, 8, target, rng, /*tolerance=*/0.03);
  double achieved = BoundaryNodeRatio(g, a);
  EXPECT_NEAR(achieved, target, 0.08) << "target " << target;
  // Assignment must stay complete and in range.
  for (uint32_t x : a) EXPECT_LT(x, 8u);
}

INSTANTIATE_TEST_SUITE_P(Targets, BoundaryRatioSweep,
                         ::testing::Values(0.25, 0.35, 0.5));

TEST(PartitionStatsTest, MatchesDirectComputation) {
  // 0 -> 1 -> 2 -> 0 split as {0, 1} | {2}.
  Graph g = MakeGraph({0, 1, 2}, {{0, 1}, {1, 2}, {2, 0}});
  auto f = Fragmentation::Create(g, {0, 0, 1}, 2);
  ASSERT_TRUE(f.ok());
  auto stats = ComputePartitionStats(*f);
  EXPECT_EQ(stats.num_fragments, 2u);
  EXPECT_EQ(stats.num_nodes, 3u);
  EXPECT_EQ(stats.num_edges, 3u);  // every edge counted once, at its source
  EXPECT_EQ(stats.boundary_nodes, 2u);
  EXPECT_EQ(stats.crossing_edges, 2u);
  EXPECT_EQ(stats.min_local_nodes, 1u);
  EXPECT_EQ(stats.max_local_nodes, 2u);
  EXPECT_NEAR(stats.boundary_node_ratio, 2.0 / 3, 1e-9);
  EXPECT_NEAR(stats.crossing_edge_ratio, 2.0 / 3, 1e-9);
  EXPECT_NEAR(stats.balance_factor, 2.0 / 1.5, 1e-9);
  EXPECT_EQ(stats.consumer_links, 2u);
  EXPECT_FALSE(stats.ToString().empty());
}

TEST(PartitionStatsTest, ConsistentWithRatioHelpersOnRandomInput) {
  Rng rng(163);
  Graph g = WebGraph(2000, 8000, 6, rng);
  auto assignment = RandomPartition(g, 5, rng);
  auto f = Fragmentation::Create(g, assignment, 5);
  ASSERT_TRUE(f.ok());
  auto stats = ComputePartitionStats(*f);
  EXPECT_EQ(stats.num_edges, g.NumEdges());
  EXPECT_NEAR(stats.boundary_node_ratio, BoundaryNodeRatio(g, assignment),
              1e-12);
  EXPECT_NEAR(stats.crossing_edge_ratio, CrossingEdgeRatio(g, assignment),
              1e-12);
  EXPECT_EQ(stats.max_fragment_size, f->MaxFragmentSize());
}

TEST(TreePartitionTest, RejectsNonTrees) {
  Graph cyclic = MakeGraph({0, 0}, {{0, 1}, {1, 0}});
  EXPECT_EQ(TreePartition(cyclic, 2).status().code(),
            StatusCode::kFailedPrecondition);
  Graph dag = MakeGraph({0, 0, 0}, {{0, 2}, {1, 2}});
  EXPECT_FALSE(TreePartition(dag, 2).ok());
  EXPECT_FALSE(TreePartition(MakeGraph({0}, {}), 0).ok());
}

TEST(TreePartitionTest, FragmentsAreConnectedSubtrees) {
  Rng rng(61);
  Graph tree = RandomTree(600, 4, rng);
  auto a = TreePartition(tree, 6);
  ASSERT_TRUE(a.ok());
  // Every fragment piece must be reachable from a unique root within the
  // fragment: count, per fragment, nodes whose parent is outside it; for a
  // connected subtree that is exactly 1 (or a global root).
  std::vector<std::set<NodeId>> fragment_roots(6);
  for (NodeId v = 0; v < tree.NumNodes(); ++v) {
    auto parents = tree.InNeighbors(v);
    if (parents.empty() || (*a)[parents[0]] != (*a)[v]) {
      fragment_roots[(*a)[v]].insert(v);
    }
  }
  size_t nonempty = 0;
  for (uint32_t i = 0; i < 6; ++i) {
    size_t size = 0;
    for (NodeId v = 0; v < tree.NumNodes(); ++v) {
      if ((*a)[v] == i) ++size;
    }
    if (size == 0) continue;
    ++nonempty;
    // Carved fragments (>0) are single connected subtrees by construction.
    if (i > 0) {
      EXPECT_EQ(fragment_roots[i].size(), 1u) << "fragment " << i;
    }
  }
  EXPECT_GE(nonempty, 5u);
}

TEST(TreePartitionTest, RoughBalance) {
  Rng rng(67);
  Graph tree = RandomTree(1000, 4, rng, /*max_fanout=*/3);
  auto a = TreePartition(tree, 5);
  ASSERT_TRUE(a.ok());
  std::vector<size_t> sizes(5, 0);
  for (uint32_t x : *a) ++sizes[x];
  for (size_t s : sizes) EXPECT_GT(s, 0u);
  // No fragment should dwarf the rest by more than ~3x the fair share.
  for (size_t s : sizes) EXPECT_LE(s, 3 * 1000u / 5);
}

// Regression: with more fragments than nodes the seed-probing loop used to
// spin forever once every node was taken (hit via dgsim_cli's default
// --sites 8 on a tiny graph). Extra fragments must simply stay empty.
TEST(ContiguousPartitionTest, MoreFragmentsThanNodesTerminates) {
  Rng rng(3);
  Graph g = MakeGraph({0, 1, 2, 0, 1, 2},
                      {{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}});
  auto assignment = ContiguousPartition(g, 8, rng);
  ASSERT_EQ(assignment.size(), 6u);
  for (uint32_t a : assignment) EXPECT_LT(a, 8u);
  auto frag = Fragmentation::Create(g, assignment, 8);
  EXPECT_TRUE(frag.ok());

  auto refined = PartitionWithBoundaryRatio(g, 8, 0.25, rng);
  ASSERT_EQ(refined.size(), 6u);
  for (uint32_t a : refined) EXPECT_LT(a, 8u);
}

TEST(TreePartitionTest, SingleFragmentIsIdentity) {
  Rng rng(71);
  Graph tree = RandomTree(50, 4, rng);
  auto a = TreePartition(tree, 1);
  ASSERT_TRUE(a.ok());
  for (uint32_t x : *a) EXPECT_EQ(x, 0u);
}

}  // namespace
}  // namespace dgs
