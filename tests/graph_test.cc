#include "graph/graph.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace dgs {
namespace {

TEST(GraphTest, EmptyGraph) {
  Graph g;
  EXPECT_EQ(g.NumNodes(), 0u);
  EXPECT_EQ(g.NumEdges(), 0u);
  EXPECT_EQ(g.Size(), 0u);
}

TEST(GraphTest, BuilderAssignsDenseIds) {
  GraphBuilder b;
  EXPECT_EQ(b.AddNode(5), 0u);
  EXPECT_EQ(b.AddNode(7), 1u);
  Graph g = std::move(b).Build();
  EXPECT_EQ(g.LabelOf(0), 5u);
  EXPECT_EQ(g.LabelOf(1), 7u);
  EXPECT_EQ(g.LabelAlphabetSize(), 8u);
}

TEST(GraphTest, AdjacencyBothDirections) {
  Graph g = MakeGraph({0, 1, 2}, {{0, 1}, {0, 2}, {1, 2}});
  EXPECT_EQ(g.NumEdges(), 3u);
  EXPECT_EQ(g.OutDegree(0), 2u);
  EXPECT_EQ(g.InDegree(2), 2u);
  auto out0 = g.OutNeighbors(0);
  EXPECT_EQ(std::vector<NodeId>(out0.begin(), out0.end()),
            (std::vector<NodeId>{1, 2}));
  auto in2 = g.InNeighbors(2);
  EXPECT_EQ(std::vector<NodeId>(in2.begin(), in2.end()),
            (std::vector<NodeId>{0, 1}));
}

TEST(GraphTest, HasEdge) {
  Graph g = MakeGraph({0, 0, 0}, {{0, 1}, {1, 2}});
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 2));
  EXPECT_FALSE(g.HasEdge(0, 2));
  EXPECT_FALSE(g.HasEdge(2, 0));
}

TEST(GraphTest, DedupeCollapsesParallelEdges) {
  GraphBuilder b;
  b.AddNode(0);
  b.AddNode(0);
  b.AddEdge(0, 1);
  b.AddEdge(0, 1);
  b.AddEdge(0, 1);
  Graph g = std::move(b).Build(/*dedupe=*/true);
  EXPECT_EQ(g.NumEdges(), 1u);
}

TEST(GraphTest, NoDedupeKeepsParallelEdges) {
  GraphBuilder b;
  b.AddNode(0);
  b.AddNode(0);
  b.AddEdge(0, 1);
  b.AddEdge(0, 1);
  Graph g = std::move(b).Build(/*dedupe=*/false);
  EXPECT_EQ(g.NumEdges(), 2u);
}

TEST(GraphTest, SelfLoopAllowed) {
  Graph g = MakeGraph({0}, {{0, 0}});
  EXPECT_TRUE(g.HasEdge(0, 0));
  EXPECT_EQ(g.OutDegree(0), 1u);
  EXPECT_EQ(g.InDegree(0), 1u);
}

TEST(GraphTest, EdgesRoundTrip) {
  std::vector<std::pair<NodeId, NodeId>> edges = {{0, 1}, {1, 2}, {2, 0}};
  Graph g = MakeGraph({0, 1, 2}, edges);
  auto got = g.Edges();
  std::sort(got.begin(), got.end());
  std::sort(edges.begin(), edges.end());
  EXPECT_EQ(got, edges);
}

TEST(GraphTest, SetLabel) {
  GraphBuilder b;
  b.AddNode(0);
  b.SetLabel(0, 9);
  Graph g = std::move(b).Build();
  EXPECT_EQ(g.LabelOf(0), 9u);
}

TEST(GraphTest, LabeledEdgeInsertsDummyNode) {
  GraphBuilder b;
  NodeId x = b.AddNode(1);
  NodeId y = b.AddNode(2);
  NodeId dummy = b.AddLabeledEdge(x, y, 42);
  Graph g = std::move(b).Build();
  EXPECT_EQ(g.NumNodes(), 3u);
  EXPECT_EQ(g.LabelOf(dummy), 42u);
  EXPECT_TRUE(g.HasEdge(x, dummy));
  EXPECT_TRUE(g.HasEdge(dummy, y));
  EXPECT_FALSE(g.HasEdge(x, y));
}

TEST(GraphTest, SizeIsNodesPlusEdges) {
  Graph g = MakeGraph({0, 0, 0, 0}, {{0, 1}, {1, 2}});
  EXPECT_EQ(g.Size(), 6u);
}

TEST(GraphTest, IsolatedNodesHaveEmptyAdjacency) {
  Graph g = MakeGraph({0, 1}, {});
  EXPECT_TRUE(g.OutNeighbors(0).empty());
  EXPECT_TRUE(g.InNeighbors(1).empty());
}

}  // namespace
}  // namespace dgs
