#include "graph/algorithms.h"

#include <gtest/gtest.h>

#include <set>

namespace dgs {
namespace {

TEST(SccTest, DagHasSingletonComponents) {
  Graph g = MakeGraph({0, 0, 0}, {{0, 1}, {1, 2}});
  uint32_t n = 0;
  auto comp = StronglyConnectedComponents(g, &n);
  EXPECT_EQ(n, 3u);
  EXPECT_NE(comp[0], comp[1]);
  EXPECT_NE(comp[1], comp[2]);
}

TEST(SccTest, CycleIsOneComponent) {
  Graph g = MakeGraph({0, 0, 0}, {{0, 1}, {1, 2}, {2, 0}});
  uint32_t n = 0;
  auto comp = StronglyConnectedComponents(g, &n);
  EXPECT_EQ(n, 1u);
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[1], comp[2]);
}

TEST(SccTest, ComponentIdsReverseTopological) {
  // a -> cycle(b, c) -> d: for an edge across components, comp[src] >
  // comp[dst].
  Graph g = MakeGraph({0, 0, 0, 0}, {{0, 1}, {1, 2}, {2, 1}, {2, 3}});
  uint32_t n = 0;
  auto comp = StronglyConnectedComponents(g, &n);
  EXPECT_EQ(n, 3u);
  EXPECT_GT(comp[0], comp[1]);
  EXPECT_EQ(comp[1], comp[2]);
  EXPECT_GT(comp[1], comp[3]);
}

TEST(SccTest, TwoInterleavedCycles) {
  Graph g = MakeGraph({0, 0, 0, 0},
                      {{0, 1}, {1, 0}, {2, 3}, {3, 2}, {1, 2}});
  uint32_t n = 0;
  auto comp = StronglyConnectedComponents(g, &n);
  EXPECT_EQ(n, 2u);
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[2], comp[3]);
  EXPECT_NE(comp[0], comp[2]);
}

TEST(SccTest, DeepChainDoesNotOverflowStack) {
  // 200k-node chain: iterative Tarjan must handle it.
  const size_t n = 200000;
  GraphBuilder b;
  for (size_t i = 0; i < n; ++i) b.AddNode(0);
  for (size_t i = 0; i + 1 < n; ++i) {
    b.AddEdge(static_cast<NodeId>(i), static_cast<NodeId>(i + 1));
  }
  Graph g = std::move(b).Build();
  uint32_t num = 0;
  StronglyConnectedComponents(g, &num);
  EXPECT_EQ(num, n);
}

TEST(AcyclicTest, DetectsSelfLoop) {
  EXPECT_FALSE(IsAcyclic(MakeGraph({0}, {{0, 0}})));
}

TEST(AcyclicTest, DagIsAcyclic) {
  EXPECT_TRUE(IsAcyclic(MakeGraph({0, 0, 0}, {{0, 1}, {0, 2}, {1, 2}})));
}

TEST(AcyclicTest, CycleIsNotAcyclic) {
  EXPECT_FALSE(IsAcyclic(MakeGraph({0, 0}, {{0, 1}, {1, 0}})));
}

TEST(TopoTest, OrderRespectsEdges) {
  Graph g = MakeGraph({0, 0, 0, 0}, {{0, 1}, {0, 2}, {1, 3}, {2, 3}});
  auto order = TopologicalOrder(g);
  ASSERT_TRUE(order.has_value());
  std::vector<size_t> pos(4);
  for (size_t i = 0; i < order->size(); ++i) pos[(*order)[i]] = i;
  for (auto [from, to] : g.Edges()) EXPECT_LT(pos[from], pos[to]);
}

TEST(TopoTest, CycleHasNoOrder) {
  EXPECT_FALSE(TopologicalOrder(MakeGraph({0, 0}, {{0, 1}, {1, 0}})));
}

TEST(BfsTest, Distances) {
  Graph g = MakeGraph({0, 0, 0, 0}, {{0, 1}, {1, 2}, {0, 2}});
  auto dist = BfsDistances(g, 0);
  EXPECT_EQ(dist[0], 0u);
  EXPECT_EQ(dist[1], 1u);
  EXPECT_EQ(dist[2], 1u);
  EXPECT_EQ(dist[3], kUnreachable);
}

TEST(DiameterTest, ChainAndCycle) {
  EXPECT_EQ(Diameter(MakeGraph({0, 0, 0}, {{0, 1}, {1, 2}})), 2u);
  // Directed 3-cycle: longest shortest path is 2.
  EXPECT_EQ(Diameter(MakeGraph({0, 0, 0}, {{0, 1}, {1, 2}, {2, 0}})), 2u);
}

TEST(RankTest, ChainRanks) {
  Graph g = MakeGraph({0, 0, 0}, {{0, 1}, {1, 2}});
  auto ranks = TopologicalRanks(g);
  EXPECT_EQ(ranks, (std::vector<uint32_t>{2, 1, 0}));
}

TEST(RankTest, DiamondTakesMaxChild) {
  // 0 -> {1, 2}, 1 -> 3, so r(0) = 2 even though 0 -> 2 with r(2) = 0.
  Graph g = MakeGraph({0, 0, 0, 0}, {{0, 1}, {0, 2}, {1, 3}});
  auto ranks = TopologicalRanks(g);
  EXPECT_EQ(ranks[3], 0u);
  EXPECT_EQ(ranks[2], 0u);
  EXPECT_EQ(ranks[1], 1u);
  EXPECT_EQ(ranks[0], 2u);
}

TEST(ConnectivityTest, WeaklyConnected) {
  EXPECT_TRUE(IsWeaklyConnected(MakeGraph({0, 0}, {{0, 1}})));
  EXPECT_TRUE(IsWeaklyConnected(MakeGraph({0, 0}, {{1, 0}})));
  EXPECT_FALSE(IsWeaklyConnected(MakeGraph({0, 0}, {})));
  EXPECT_TRUE(IsWeaklyConnected(Graph()));
}

TEST(ForestTest, DownwardForest) {
  EXPECT_TRUE(IsDownwardForest(MakeGraph({0, 0, 0}, {{0, 1}, {0, 2}})));
  // In-degree 2 is not a forest.
  EXPECT_FALSE(IsDownwardForest(MakeGraph({0, 0, 0}, {{0, 2}, {1, 2}})));
  // A cycle is not a forest.
  EXPECT_FALSE(IsDownwardForest(MakeGraph({0, 0}, {{0, 1}, {1, 0}})));
  // Two disjoint trees are a forest.
  EXPECT_TRUE(IsDownwardForest(MakeGraph({0, 0, 0, 0}, {{0, 1}, {2, 3}})));
}

}  // namespace
}  // namespace dgs
