#include "util/status.h"

#include <gtest/gtest.h>

namespace dgs {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad node id");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad node id");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad node id");
}

TEST(StatusTest, FactoryCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

// The retry policy contract (drives dgs::Server::RetryOptions): transient
// fault classes are retryable, deterministic reports about the request or
// the data path are not.
TEST(StatusTest, IsRetryableTransientCodes) {
  EXPECT_TRUE(IsRetryable(StatusCode::kUnavailable));
  EXPECT_TRUE(IsRetryable(StatusCode::kDeadlineExceeded));
  EXPECT_TRUE(IsRetryable(StatusCode::kResourceExhausted));
}

TEST(StatusTest, IsRetryableDeterministicCodes) {
  // DataLoss in particular must NOT be retryable: a corrupt payload is a
  // deterministic verdict about the data path, and retrying would replay it.
  EXPECT_FALSE(IsRetryable(StatusCode::kDataLoss));
  EXPECT_FALSE(IsRetryable(StatusCode::kOk));
  EXPECT_FALSE(IsRetryable(StatusCode::kInvalidArgument));
  EXPECT_FALSE(IsRetryable(StatusCode::kNotFound));
  EXPECT_FALSE(IsRetryable(StatusCode::kFailedPrecondition));
  EXPECT_FALSE(IsRetryable(StatusCode::kOutOfRange));
  EXPECT_FALSE(IsRetryable(StatusCode::kInternal));
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);
  EXPECT_EQ(*v, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::NotFound("missing");
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> v = std::string("hello");
  std::string s = std::move(v).value();
  EXPECT_EQ(s, "hello");
}

TEST(StatusOrTest, ArrowOperator) {
  StatusOr<std::string> v = std::string("abc");
  EXPECT_EQ(v->size(), 3u);
}

}  // namespace
}  // namespace dgs
