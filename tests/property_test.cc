// The central correctness property of the whole library: every distributed
// algorithm computes exactly the centralized maximum simulation, for any
// graph, any pattern and any fragmentation (Theorems 2, 3; Corollary 4).
// Parameterized sweeps cover graph family x partitioner x pattern shape x
// site count.

#include <gtest/gtest.h>

#include "core/api.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "partition/partitioner.h"
#include "simulation/oracle.h"
#include "simulation/simulation.h"

namespace dgs {
namespace {

enum class GraphFamily { kRandom, kWeb, kCitation, kTree };
enum class Partitioner { kRandom, kContiguous, kHash };

struct PropertyCase {
  uint64_t seed;
  GraphFamily family;
  size_t n, m;
  Label alphabet;
  Partitioner partitioner;
  uint32_t sites;
  PatternKind pattern_kind;
  size_t nq, mq;
  uint32_t depth;  // for kDag
};

std::string CaseName(const ::testing::TestParamInfo<PropertyCase>& info) {
  const PropertyCase& c = info.param;
  std::string name;
  switch (c.family) {
    case GraphFamily::kRandom:
      name += "Random";
      break;
    case GraphFamily::kWeb:
      name += "Web";
      break;
    case GraphFamily::kCitation:
      name += "Citation";
      break;
    case GraphFamily::kTree:
      name += "Tree";
      break;
  }
  name += std::to_string(c.n) + "x" + std::to_string(c.m) + "s" +
          std::to_string(c.sites);
  switch (c.pattern_kind) {
    case PatternKind::kAny:
      name += "Any";
      break;
    case PatternKind::kCyclic:
      name += "Cyclic";
      break;
    case PatternKind::kDag:
      name += "DagD" + std::to_string(c.depth);
      break;
  }
  return name;
}

class DistributedEqualsCentralized
    : public ::testing::TestWithParam<PropertyCase> {
 protected:
  Graph MakeGraphUnderTest(Rng& rng) const {
    const PropertyCase& c = GetParam();
    switch (c.family) {
      case GraphFamily::kRandom:
        return RandomGraph(c.n, c.m, c.alphabet, rng);
      case GraphFamily::kWeb:
        return WebGraph(c.n, c.m, c.alphabet, rng);
      case GraphFamily::kCitation:
        return CitationDag(c.n, c.m, c.alphabet, rng);
      case GraphFamily::kTree:
        return RandomTree(c.n, c.alphabet, rng);
    }
    return Graph();
  }

  std::vector<uint32_t> MakeAssignment(const Graph& g, Rng& rng) const {
    const PropertyCase& c = GetParam();
    switch (c.partitioner) {
      case Partitioner::kRandom:
        return RandomPartition(g, c.sites, rng);
      case Partitioner::kContiguous:
        return ContiguousPartition(g, c.sites, rng);
      case Partitioner::kHash:
        return HashPartition(g, c.sites);
    }
    return {};
  }

  Pattern MakePatternUnderTest(const Graph& g, Rng& rng) const {
    const PropertyCase& c = GetParam();
    PatternSpec spec;
    spec.num_nodes = c.nq;
    spec.num_edges = c.mq;
    spec.kind = c.pattern_kind;
    spec.dag_depth = c.depth;
    // Prefer extraction (guaranteed matches); fall back to synthesis when
    // the graph cannot supply the shape.
    auto extracted = ExtractPattern(g, spec, rng);
    if (extracted.ok()) return *extracted;
    return SynthesizePattern(spec, c.alphabet, rng);
  }
};

TEST_P(DistributedEqualsCentralized, AllApplicableAlgorithms) {
  const PropertyCase& c = GetParam();
  Rng rng(c.seed);
  for (int trial = 0; trial < 3; ++trial) {
    Graph g = MakeGraphUnderTest(rng);
    Pattern q = MakePatternUnderTest(g, rng);
    auto assignment = MakeAssignment(g, rng);
    auto expected = ComputeSimulation(q, g);

    std::vector<Algorithm> algorithms = {Algorithm::kDgpm,
                                         Algorithm::kDgpmNoOpt,
                                         Algorithm::kMatch, Algorithm::kDisHhk,
                                         Algorithm::kDMes};
    if (q.IsDag() || IsAcyclic(g)) algorithms.push_back(Algorithm::kDgpmDag);
    if (IsDownwardForest(g)) algorithms.push_back(Algorithm::kDgpmTree);

    for (Algorithm algorithm : algorithms) {
      DistOptions options;
      options.algorithm = algorithm;
      auto outcome = DistributedMatch(g, assignment, c.sites, q, options);
      ASSERT_TRUE(outcome.ok())
          << AlgorithmName(algorithm) << ": " << outcome.status().ToString();
      ASSERT_TRUE(outcome->result == expected)
          << AlgorithmName(algorithm) << " diverges (seed=" << c.seed
          << ", trial=" << trial << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DistributedEqualsCentralized,
    ::testing::Values(
        PropertyCase{201, GraphFamily::kRandom, 120, 480, 3,
                     Partitioner::kRandom, 4, PatternKind::kCyclic, 4, 8, 0},
        PropertyCase{202, GraphFamily::kRandom, 200, 600, 5,
                     Partitioner::kHash, 7, PatternKind::kAny, 5, 8, 0},
        PropertyCase{203, GraphFamily::kRandom, 80, 400, 2,
                     Partitioner::kContiguous, 3, PatternKind::kCyclic, 3, 5,
                     0},
        PropertyCase{204, GraphFamily::kWeb, 300, 1500, 6,
                     Partitioner::kRandom, 6, PatternKind::kCyclic, 5, 10, 0},
        PropertyCase{205, GraphFamily::kWeb, 250, 1000, 8,
                     Partitioner::kContiguous, 5, PatternKind::kDag, 6, 9, 3},
        PropertyCase{206, GraphFamily::kCitation, 300, 900, 5,
                     Partitioner::kRandom, 5, PatternKind::kDag, 6, 9, 3},
        PropertyCase{207, GraphFamily::kCitation, 400, 1200, 7,
                     Partitioner::kHash, 8, PatternKind::kDag, 5, 7, 2},
        PropertyCase{208, GraphFamily::kTree, 300, 0, 4, Partitioner::kRandom,
                     5, PatternKind::kDag, 4, 5, 2},
        PropertyCase{209, GraphFamily::kTree, 500, 0, 3,
                     Partitioner::kContiguous, 6, PatternKind::kAny, 3, 3, 0},
        PropertyCase{210, GraphFamily::kRandom, 150, 300, 2,
                     Partitioner::kRandom, 10, PatternKind::kAny, 6, 10, 0},
        PropertyCase{211, GraphFamily::kWeb, 200, 800, 4,
                     Partitioner::kRandom, 2, PatternKind::kCyclic, 4, 7, 0},
        PropertyCase{212, GraphFamily::kRandom, 60, 240, 3,
                     Partitioner::kRandom, 12, PatternKind::kCyclic, 5, 9, 0}),
    CaseName);

// Push-enabled dGPM with aggressive thresholds against the oracle: the push
// machinery (equation shipping, subscriptions, bypass) must never change
// the answer.
class PushProperty : public ::testing::TestWithParam<double> {};

TEST_P(PushProperty, PushNeverChangesAnswer) {
  Rng rng(301 + static_cast<uint64_t>(GetParam() * 1000));
  for (int trial = 0; trial < 6; ++trial) {
    Graph g = WebGraph(250, 1000, 5, rng);
    PatternSpec spec;
    spec.num_nodes = 5;
    spec.num_edges = 8;
    spec.kind = PatternKind::kCyclic;
    auto q = ExtractPattern(g, spec, rng);
    if (!q.ok()) continue;
    auto assignment = RandomPartition(g, 6, rng);
    auto frag = Fragmentation::Create(g, assignment, 6);
    ASSERT_TRUE(frag.ok());
    DgpmConfig config;
    config.enable_push = true;
    config.push_threshold = GetParam();
    auto outcome = RunDgpm(*frag, *q, config);
    ASSERT_TRUE(outcome.result == ComputeSimulation(*q, g))
        << "theta=" << GetParam() << " trial=" << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Thresholds, PushProperty,
                         ::testing::Values(0.0, 0.05, 0.2, 1.0));

}  // namespace
}  // namespace dgs
