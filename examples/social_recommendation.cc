// The paper's running example (Fig. 1 / Example 1): a beer brand searches a
// distributed social network for potential customers using the cyclic
// recommendation pattern over labels {YB, YF, F, SP}.
//
// Runs the exact 13-node fixture first (reproducing Example 2's answer),
// then scales the same scenario up to a synthetic social graph that is
// deployed ONCE with dgs::Engine and queried repeatedly — comparing dGPM
// against the Match and dMes baselines on the same resident deployment.
//
//   ./examples/social_recommendation [--threads N] [--wire v1|v2]

#include <cstdio>
#include <iostream>

#include "dgs.h"
#include "example_flags.h"

namespace {

dgs::EngineOptions MakeEngineOptions(const dgs::examples::Flags& flags) {
  dgs::EngineOptions options;
  options.num_threads = flags.threads;
  options.wire_format = flags.wire;
  return options;
}

void RunFixture(const dgs::examples::Flags& flags) {
  auto ex = dgs::MakeSocialExample();
  std::printf("=== Fig. 1 fixture: 13 nodes over 3 sites ===\n");
  auto engine =
      dgs::Engine::Create(ex.g, ex.assignment, 3, MakeEngineOptions(flags));
  if (!engine.ok()) {
    std::fprintf(stderr, "deploy error: %s\n",
                 engine.status().ToString().c_str());
    return;
  }
  dgs::QueryOptions query;
  query.algorithm = dgs::Algorithm::kDgpm;
  auto outcome = (*engine)->Match(ex.q, query);
  if (!outcome.ok()) {
    std::fprintf(stderr, "error: %s\n", outcome.status().ToString().c_str());
    return;
  }
  const char* query_names[] = {"YB", "YF", "F", "SP"};
  for (dgs::NodeId u = 0; u < 4; ++u) {
    std::printf("  %s matches:", query_names[u]);
    for (dgs::NodeId v : outcome->result.Matches(u)) {
      std::printf(" %s", ex.node_names[v].c_str());
    }
    std::printf("\n");
  }
  std::printf("  (Example 2 expects: YB {yb2 yb3}, YF {yf1 yf2 yf3}, "
              "F {f3 f2 f4}, SP {sp1 sp2 sp3})\n\n");
}

void RunAtScale(const dgs::examples::Flags& flags) {
  std::printf("=== Scaled-up social graph (deploy once, query many) ===\n");
  dgs::Rng rng(2014);
  // Social graph with hubs; 15 interest labels, the four of interest being
  // any of them (the pattern is mined from the data below).
  dgs::Graph g = dgs::WebGraph(30000, 150000, dgs::kDefaultAlphabet, rng);
  dgs::PatternSpec spec;
  spec.num_nodes = 4;
  spec.num_edges = 6;
  spec.kind = dgs::PatternKind::kCyclic;
  auto q = dgs::ExtractPattern(g, spec, rng);
  if (!q.ok()) {
    std::fprintf(stderr, "pattern extraction failed: %s\n",
                 q.status().ToString().c_str());
    return;
  }
  auto assignment = dgs::PartitionWithBoundaryRatio(g, 8, 0.25, rng);

  // One resident deployment serves every algorithm below; only the
  // per-query options change.
  auto engine = dgs::Engine::Create(g, assignment, 8, MakeEngineOptions(flags));
  if (!engine.ok()) {
    std::fprintf(stderr, "deploy error: %s\n",
                 engine.status().ToString().c_str());
    return;
  }
  std::printf("deployed %u sites in %.2f ms\n", (*engine)->NumSites(),
              (*engine)->serving_stats().deploy_seconds * 1e3);

  dgs::TablePrinter table(
      {"algorithm", "PT (ms)", "DS", "rounds", "matches"});
  for (dgs::Algorithm algorithm :
       {dgs::Algorithm::kDgpm, dgs::Algorithm::kMatch,
        dgs::Algorithm::kDMes}) {
    dgs::QueryOptions query;
    query.algorithm = algorithm;
    auto outcome = (*engine)->Match(*q, query);
    if (!outcome.ok()) continue;
    table.AddRow({dgs::AlgorithmName(algorithm),
                  dgs::FormatDouble(outcome->response_seconds() * 1e3, 2),
                  dgs::FormatBytes(outcome->data_shipment_bytes()),
                  std::to_string(outcome->stats.rounds),
                  std::to_string(outcome->result.RelationSize())});
  }
  table.Print(std::cout);
  const auto& stats = (*engine)->serving_stats();
  std::printf("served %llu queries; cumulative DS %s\n",
              static_cast<unsigned long long>(stats.queries_served),
              dgs::FormatBytes(stats.cumulative.data_bytes).c_str());
}

}  // namespace

int main(int argc, char** argv) {
  dgs::examples::Flags flags;
  if (!dgs::examples::Flags::Parse(argc, argv, &flags)) return 1;
  RunFixture(flags);
  RunAtScale(flags);
  return 0;
}
