// DAG workloads (Section 5.1): evaluate DAG patterns of growing diameter on
// a citation-style DAG, comparing dGPMd's rank-batched scheduling against
// plain dGPM. Mirrors the qualitative behaviour of Fig. 6(g)/6(h): response
// time grows with d while data shipment does not, and dGPMd sends fewer
// (batched) messages than dGPM.
//
// The citation graph is deployed once (dgs::Engine); the whole depth sweep
// — ten queries — runs against the resident deployment.
//
//   ./examples/citation_analysis [--threads N] [--wire v1|v2]

#include <cstdio>
#include <iostream>

#include "dgs.h"
#include "example_flags.h"

int main(int argc, char** argv) {
  dgs::examples::Flags flags;
  if (!dgs::examples::Flags::Parse(argc, argv, &flags)) return 1;

  dgs::Rng rng(77);
  dgs::Graph g = dgs::CitationDag(40000, 100000, dgs::kDefaultAlphabet, rng);
  auto assignment = dgs::PartitionWithBoundaryRatio(g, 8, 0.25, rng);
  std::printf("citation DAG: %zu nodes, %zu edges, 8 sites\n", g.NumNodes(),
              g.NumEdges());

  dgs::EngineOptions engine_options;
  engine_options.num_threads = flags.threads;
  engine_options.wire_format = flags.wire;
  auto engine = dgs::Engine::Create(g, assignment, 8, engine_options);
  if (!engine.ok()) {
    std::fprintf(stderr, "deploy error: %s\n",
                 engine.status().ToString().c_str());
    return 1;
  }

  dgs::TablePrinter table({"d", "algorithm", "PT (ms)", "DS", "msgs",
                           "truth values", "matches"});
  for (uint32_t depth = 2; depth <= 6; ++depth) {
    dgs::PatternSpec spec;
    spec.num_nodes = depth + 4;
    spec.num_edges = depth + 8;
    spec.kind = dgs::PatternKind::kDag;
    spec.dag_depth = depth;
    auto q = dgs::ExtractPattern(g, spec, rng);
    if (!q.ok()) continue;

    for (dgs::Algorithm algorithm :
         {dgs::Algorithm::kDgpmDag, dgs::Algorithm::kDgpm}) {
      dgs::QueryOptions query;
      query.algorithm = algorithm;
      auto outcome = (*engine)->Match(*q, query);
      if (!outcome.ok()) continue;
      table.AddRow({std::to_string(depth), dgs::AlgorithmName(algorithm),
                    dgs::FormatDouble(outcome->response_seconds() * 1e3, 2),
                    dgs::FormatBytes(outcome->data_shipment_bytes()),
                    std::to_string(outcome->stats.data_messages),
                    std::to_string(outcome->counters.vars_shipped),
                    std::to_string(outcome->result.RelationSize())});
    }
  }
  table.Print(std::cout);
  const auto& stats = (*engine)->serving_stats();
  std::printf("served %llu queries on one deployment (deploy %.2f ms)\n",
              static_cast<unsigned long long>(stats.queries_served),
              stats.deploy_seconds * 1e3);
  return 0;
}
