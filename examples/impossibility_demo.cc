// Empirical illustration of Theorem 1 (the impossibility of parallel
// scalability), using the Fig. 2 gadget: Q0 is the 2-node cycle A <-> B and
// G0 an alternating 2n-cycle, one {Ai, Bi} pair per site.
//
// |Q0| and |Fm| are constants, yet as n grows the refinement rounds (hence
// response time) and, in the 2-fragment variant, the data shipment grow
// linearly: no algorithm can be parallel scalable. The demo also shows the
// Theorem 2 consolation: all cost is bounded by the partition parameters
// |Vf| and |Ef|, which here deliberately equal |G|/2.
//
//   ./examples/impossibility_demo

#include <iostream>

#include "dgs.h"

int main() {
  std::cout << "Theorem 1 demo: broken 2n-cycle, one {Ai,Bi} pair per site\n";
  std::cout << "(|Q| = 4 and |Fm| = 5 are constant; watch rounds and DS "
               "grow with n)\n\n";

  dgs::TablePrinter per_site({"n (= |F|)", "|Fm|", "|Vf|", "rounds",
                              "PT (ms)", "DS", "truth values"});
  for (size_t n : {4u, 8u, 16u, 32u, 64u, 128u}) {
    auto gadget = dgs::MakeLocalityGadget(n, /*broken=*/true);
    auto frag = dgs::Fragmentation::Create(gadget.g, gadget.assignment,
                                           static_cast<uint32_t>(n));
    if (!frag.ok()) continue;
    dgs::DistOptions options;
    options.enable_push = false;
    auto outcome = dgs::DistributedMatch(gadget.g, gadget.assignment,
                                         static_cast<uint32_t>(n), gadget.q,
                                         options);
    if (!outcome.ok()) continue;
    per_site.AddRow({std::to_string(n), std::to_string(frag->MaxFragmentSize()),
                     std::to_string(frag->NumBoundaryNodes()),
                     std::to_string(outcome->stats.rounds),
                     dgs::FormatDouble(outcome->response_seconds() * 1e3, 3),
                     dgs::FormatBytes(outcome->data_shipment_bytes()),
                     std::to_string(outcome->counters.vars_shipped)});
  }
  per_site.Print(std::cout);

  std::cout << "\nTheorem 1(2) variant: two fragments (all A | all B); |F| "
               "= 2 is constant,\nyet data shipment grows with n:\n\n";
  dgs::TablePrinter two_site({"n", "|F|", "DS", "truth values"});
  for (size_t n : {8u, 32u, 128u, 512u}) {
    auto gadget = dgs::MakeLocalityGadget(n, /*broken=*/true);
    std::vector<uint32_t> assignment(2 * n);
    for (size_t i = 0; i < 2 * n; ++i) assignment[i] = i % 2;
    dgs::DistOptions options;
    options.enable_push = false;
    auto outcome =
        dgs::DistributedMatch(gadget.g, assignment, 2, gadget.q, options);
    if (!outcome.ok()) continue;
    two_site.AddRow({std::to_string(n), "2",
                     dgs::FormatBytes(outcome->data_shipment_bytes()),
                     std::to_string(outcome->counters.vars_shipped)});
  }
  two_site.Print(std::cout);
  return 0;
}
