// Partition quality explorer: the paper's bounds are stated in the
// partition parameters |Vf| (boundary nodes) and |Ef| (crossing edges).
// This tool partitions one graph several ways and shows how dGPM's response
// time and data shipment track partition quality rather than graph size —
// the motivation for pairing the algorithms with partitioners like [27].
//
//   ./examples/partition_explorer [--threads N] [--wire v1|v2]

#include <iostream>

#include "dgs.h"
#include "example_flags.h"

int main(int argc, char** argv) {
  dgs::examples::Flags flags;
  if (!dgs::examples::Flags::Parse(argc, argv, &flags)) return 1;

  dgs::Rng rng(99);
  dgs::Graph g = dgs::WebGraph(40000, 200000, dgs::kDefaultAlphabet, rng);
  dgs::PatternSpec spec;
  spec.num_nodes = 5;
  spec.num_edges = 10;
  spec.kind = dgs::PatternKind::kCyclic;
  auto q = dgs::ExtractPattern(g, spec, rng);
  if (!q.ok()) {
    std::cerr << "pattern extraction failed: " << q.status().ToString()
              << "\n";
    return 1;
  }
  std::cout << "graph: " << g.NumNodes() << " nodes, " << g.NumEdges()
            << " edges; |Q| = (" << q->NumNodes() << ", " << q->NumEdges()
            << "); 8 sites\n\n";

  struct Strategy {
    const char* name;
    std::vector<uint32_t> assignment;
  };
  std::vector<Strategy> strategies;
  strategies.push_back({"contiguous (BFS)", dgs::ContiguousPartition(g, 8, rng)});
  strategies.push_back(
      {"refined to 25%", dgs::PartitionWithBoundaryRatio(g, 8, 0.25, rng)});
  strategies.push_back(
      {"refined to 50%", dgs::PartitionWithBoundaryRatio(g, 8, 0.50, rng)});
  strategies.push_back({"random", dgs::RandomPartition(g, 8, rng)});
  strategies.push_back({"hash", dgs::HashPartition(g, 8)});

  dgs::TablePrinter table({"partitioner", "|Vf|/|V|", "|Ef|/|E|", "PT (ms)",
                           "DS", "rounds"});
  for (const auto& s : strategies) {
    auto frag = dgs::Fragmentation::Create(g, s.assignment, 8);
    if (!frag.ok()) continue;
    dgs::DistOptions options;
    options.num_threads = flags.threads;
    options.wire_format = flags.wire;
    auto outcome = dgs::DistributedMatch(g, *frag, *q, options);
    if (!outcome.ok()) continue;
    table.AddRow(
        {s.name,
         dgs::FormatDouble(dgs::BoundaryNodeRatio(g, s.assignment), 3),
         dgs::FormatDouble(dgs::CrossingEdgeRatio(g, s.assignment), 3),
         dgs::FormatDouble(outcome->response_seconds() * 1e3, 2),
         dgs::FormatBytes(outcome->data_shipment_bytes()),
         std::to_string(outcome->stats.rounds)});
  }
  table.Print(std::cout);
  std::cout << "\nLower |Vf|/|Ef| => fewer boundary truth values to refine "
               "and ship (Theorem 2).\n";
  return 0;
}
