// Quickstart: build a small labeled graph, deploy it once over three sites
// with dgs::Engine, and serve two pattern queries against the resident
// deployment, cross-checking against the centralized algorithm.
//
//   ./examples/quickstart [--threads N] [--wire v1|v2]

#include <cstdio>

#include "dgs.h"
#include "example_flags.h"

int main(int argc, char** argv) {
  dgs::examples::Flags flags;
  if (!dgs::examples::Flags::Parse(argc, argv, &flags)) return 1;

  // A toy recommendation graph over labels {0 = user, 1 = product,
  // 2 = review}. user -> product ("bought"), product -> review,
  // review -> user ("written by").
  dgs::GraphBuilder builder;
  const dgs::Label kUser = 0, kProduct = 1, kReview = 2;
  // Three users, two products, two reviews.
  dgs::NodeId u0 = builder.AddNode(kUser);
  dgs::NodeId u1 = builder.AddNode(kUser);
  dgs::NodeId u2 = builder.AddNode(kUser);
  dgs::NodeId p0 = builder.AddNode(kProduct);
  dgs::NodeId p1 = builder.AddNode(kProduct);
  dgs::NodeId r0 = builder.AddNode(kReview);
  dgs::NodeId r1 = builder.AddNode(kReview);
  builder.AddEdge(u0, p0);
  builder.AddEdge(u1, p0);
  builder.AddEdge(u1, p1);
  builder.AddEdge(u2, p1);
  builder.AddEdge(p0, r0);
  builder.AddEdge(p1, r1);
  builder.AddEdge(r0, u1);
  builder.AddEdge(r1, u2);
  dgs::Graph g = std::move(builder).Build();

  // Deploy once: fragment the graph over 3 sites and keep the deployment
  // resident. Queries are then served against it without rebuilding
  // anything graph-sized.
  dgs::Rng rng(7);
  std::vector<uint32_t> assignment = dgs::RandomPartition(g, 3, rng);
  dgs::EngineOptions engine_options;
  engine_options.num_threads = flags.threads;
  engine_options.wire_format = flags.wire;
  auto engine = dgs::Engine::Create(g, assignment, 3, engine_options);
  if (!engine.ok()) {
    std::fprintf(stderr, "deploy error: %s\n",
                 engine.status().ToString().c_str());
    return 1;
  }

  // Query 1: a user who bought a product that has a review written by a
  // user — the classic cyclic "engaged customer" query.
  dgs::Pattern engaged(dgs::MakeGraph({kUser, kProduct, kReview},
                                      {{0, 1}, {1, 2}, {2, 0}}));
  // Query 2: any product with a review (a DAG query; Algorithm::kAuto
  // dispatches it differently than the cyclic one — same engine).
  dgs::Pattern reviewed(dgs::MakeGraph({kProduct, kReview}, {{0, 1}}));

  const char* engaged_names[] = {"user", "product", "review"};
  const char* reviewed_names[] = {"product", "review"};
  struct Query {
    const char* title;
    const dgs::Pattern* q;
    const char** names;
  } queries[] = {{"engaged customer (cyclic)", &engaged, engaged_names},
                 {"reviewed product (DAG)", &reviewed, reviewed_names}};

  bool all_match_centralized = true;
  for (const Query& query : queries) {
    auto outcome = (*engine)->Match(*query.q);  // QueryOptions{} = kAuto
    if (!outcome.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   outcome.status().ToString().c_str());
      return 1;
    }
    std::printf("query: %s\n", query.title);
    std::printf("  G matches Q: %s\n",
                outcome->result.GraphMatches() ? "yes" : "no");
    for (dgs::NodeId u = 0; u < query.q->NumNodes(); ++u) {
      std::printf("  matches of query node %-7s:", query.names[u]);
      for (dgs::NodeId v : outcome->result.Matches(u)) std::printf(" %u", v);
      std::printf("\n");
    }
    std::printf(
        "  response time: %.3f ms, data shipped: %llu bytes, rounds: %u\n",
        outcome->response_seconds() * 1e3,
        static_cast<unsigned long long>(outcome->data_shipment_bytes()),
        outcome->stats.rounds);

    // Cross-check against the centralized algorithm.
    auto expected = dgs::ComputeSimulation(*query.q, g);
    const bool same = outcome->result == expected;
    std::printf("  centralized result identical: %s\n", same ? "yes" : "no");
    all_match_centralized = all_match_centralized && same;
  }

  const auto& stats = (*engine)->serving_stats();
  std::printf(
      "served %llu queries on one deployment (deploy cost %.3f ms, "
      "cumulative DS %llu bytes)\n",
      static_cast<unsigned long long>(stats.queries_served),
      stats.deploy_seconds * 1e3,
      static_cast<unsigned long long>(stats.cumulative.data_bytes));
  return all_match_centralized ? 0 : 1;
}
