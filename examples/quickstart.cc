// Quickstart: build a small labeled graph, partition it over three sites,
// and evaluate a pattern with distributed graph simulation (dGPM),
// cross-checking against the centralized algorithm.
//
//   ./examples/quickstart

#include <cstdio>

#include "dgs.h"

int main() {
  // A toy recommendation graph over labels {0 = user, 1 = product,
  // 2 = review}. user -> product ("bought"), product -> review,
  // review -> user ("written by").
  dgs::GraphBuilder builder;
  const dgs::Label kUser = 0, kProduct = 1, kReview = 2;
  // Three users, two products, two reviews.
  dgs::NodeId u0 = builder.AddNode(kUser);
  dgs::NodeId u1 = builder.AddNode(kUser);
  dgs::NodeId u2 = builder.AddNode(kUser);
  dgs::NodeId p0 = builder.AddNode(kProduct);
  dgs::NodeId p1 = builder.AddNode(kProduct);
  dgs::NodeId r0 = builder.AddNode(kReview);
  dgs::NodeId r1 = builder.AddNode(kReview);
  builder.AddEdge(u0, p0);
  builder.AddEdge(u1, p0);
  builder.AddEdge(u1, p1);
  builder.AddEdge(u2, p1);
  builder.AddEdge(p0, r0);
  builder.AddEdge(p1, r1);
  builder.AddEdge(r0, u1);
  builder.AddEdge(r1, u2);
  dgs::Graph g = std::move(builder).Build();

  // Pattern: a user who bought a product that has a review written by a
  // user — the classic cyclic "engaged customer" query.
  dgs::Pattern q(dgs::MakeGraph({kUser, kProduct, kReview},
                                {{0, 1}, {1, 2}, {2, 0}}));

  // Distribute over 3 sites.
  dgs::Rng rng(7);
  std::vector<uint32_t> assignment = dgs::RandomPartition(g, 3, rng);

  dgs::DistOptions options;
  options.algorithm = dgs::Algorithm::kDgpm;
  auto outcome = dgs::DistributedMatch(g, assignment, 3, q, options);
  if (!outcome.ok()) {
    std::fprintf(stderr, "error: %s\n", outcome.status().ToString().c_str());
    return 1;
  }

  std::printf("G matches Q: %s\n",
              outcome->result.GraphMatches() ? "yes" : "no");
  const char* names[] = {"user", "product", "review"};
  for (dgs::NodeId u = 0; u < q.NumNodes(); ++u) {
    std::printf("  matches of query node %-7s:", names[u]);
    for (dgs::NodeId v : outcome->result.Matches(u)) std::printf(" %u", v);
    std::printf("\n");
  }
  std::printf("response time: %.3f ms, data shipped: %llu bytes, rounds: %u\n",
              outcome->response_seconds() * 1e3,
              static_cast<unsigned long long>(outcome->data_shipment_bytes()),
              outcome->stats.rounds);

  // Cross-check against the centralized algorithm.
  auto expected = dgs::ComputeSimulation(q, g);
  std::printf("centralized result identical: %s\n",
              outcome->result == expected ? "yes" : "no");
  return outcome->result == expected ? 0 : 1;
}
