// Shared command-line flags for the example binaries:
//
//   --threads N              cluster executor width; 0 = all hardware
//                            threads                                   (1)
//   --wire v1|v2             wire format: fixed records or delta       (v2)
//   --transport loopback|tcp[:procs]
//                            round-execution backend: in-process, or one
//                            OS process per site-group over TCP  (loopback)
//
// Results and message accounting are identical for every combination
// (see runtime/cluster.h, runtime/message.h and runtime/transport.h); the
// flags exist so every example can demonstrate the parallel runtime, both
// wire formats, and the multi-process backend.

#ifndef DGS_EXAMPLES_EXAMPLE_FLAGS_H_
#define DGS_EXAMPLES_EXAMPLE_FLAGS_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "runtime/message.h"
#include "runtime/transport.h"

namespace dgs::examples {

struct Flags {
  uint32_t threads = 1;
  WireFormat wire = WireFormat::kV2Delta;
  TransportOptions transport;

  // Parses --threads/--wire/--transport; returns false (after printing
  // usage) on malformed or unknown arguments.
  static bool Parse(int argc, char** argv, Flags* flags) {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--threads" || arg == "--wire" || arg == "--transport") {
        if (i + 1 >= argc) {
          std::fprintf(stderr, "missing value for %s\n", arg.c_str());
          return false;
        }
      }
      if (arg == "--threads") {
        char* end = nullptr;
        const long threads = std::strtol(argv[++i], &end, 10);
        if (end == argv[i] || *end != '\0' || threads < 0) {
          std::fprintf(stderr, "bad --threads value: %s\n", argv[i]);
          return false;
        }
        flags->threads = static_cast<uint32_t>(threads);
      } else if (arg == "--wire") {
        const std::string wire = argv[++i];
        if (wire == "v1") {
          flags->wire = WireFormat::kV1Fixed;
        } else if (wire == "v2") {
          flags->wire = WireFormat::kV2Delta;
        } else {
          std::fprintf(stderr, "bad --wire value: %s (want v1|v2)\n",
                       wire.c_str());
          return false;
        }
      } else if (arg == "--transport") {
        auto parsed = ParseTransportSpec(argv[++i]);
        if (!parsed.ok()) {
          std::fprintf(stderr, "bad --transport value: %s (want "
                       "loopback|tcp[:procs])\n",
                       argv[i]);
          return false;
        }
        flags->transport = std::move(parsed).value();
      } else {
        std::fprintf(stderr,
                     "unknown option: %s\nusage: %s [--threads N] "
                     "[--wire v1|v2] [--transport loopback|tcp[:procs]]\n",
                     arg.c_str(), argv[0]);
        return false;
      }
    }
    return true;
  }
};

}  // namespace dgs::examples

#endif  // DGS_EXAMPLES_EXAMPLE_FLAGS_H_
