// dgsim — command-line driver for distributed graph simulation.
//
// Evaluates a pattern file against a graph file (both in the dgs-graph v1
// text format, see graph/io.h) with any of the library's algorithms:
//
//   dgsim --graph G.txt --pattern Q.txt [options]
//
// or deploys the graph once and serves queries interactively through a
// resident dgs::Server (the paper's deploy-once / query-many model):
//
//   dgsim --graph G.txt --serve [options]
//   dgsim> match Q.txt [algorithm]      evaluate a pattern file
//   dgsim> boolean Q.txt [algorithm]    Boolean query (answer only)
//   dgsim> subscribe Q.txt              standing query: register a pattern
//   dgsim> subs                         list subscriptions + match counts
//   dgsim> update +u,v -u,v ...         mutate the deployed graph: insert
//                                       (+) / delete (-) edges as ONE
//                                       atomic batch
//   dgsim> stats                        serving + cache statistics (with
//                                       p50/p95/p99 latency)
//   dgsim> metrics                      Prometheus exposition of the
//                                       server's counters and histograms
//   dgsim> trace on|off                 start/stop recording trace events
//   dgsim> help / quit
//
// A standing-query session looks like:
//
//   dgsim> subscribe Q.txt              -> subscription 1: 42 match pairs
//   dgsim> update -3,17 +3,21           -> version 1: -1/+1 edges; then
//                                          each subscription prints the
//                                          delta the batch caused, e.g.
//                                          "subscription 1 v1: +0/-2 pairs"
//   dgsim> subs                         -> current per-subscription counts
//
// An update either commits everywhere (the version bumps, every
// subscription's delta is delivered, queries see the new graph) or — if
// chaos poisons the replication run — nowhere, and the same batch can be
// resubmitted; see serve/server.h for the delivery semantics.
//
// Options:
//   --algorithm auto|dgpm|dgpmnoopt|dgpmd|dgpmt|match|dishhk|dmes  (auto)
//   --sites N           number of fragments/sites                  (8)
//   --vf-ratio R        target boundary ratio in (0,1); otherwise a
//                       BFS/range partition is used as-is
//   --seed S            RNG seed                                   (2014)
//   --threads N         cluster executor width; 0 = all hardware   (1)
//   --wire v1|v2        wire format: fixed records or delta        (v2)
//   --transport loopback|tcp[:procs]
//                       round-execution backend: in-process, or one OS
//                       process per site-group over TCP; results and
//                       charged accounting are identical, tcp reports the
//                       measured socket traffic alongside     (loopback)
//   --boolean           Boolean pattern query (answer only)
//   --stats             print partition statistics
//   --matches           print the full match relation (default: counts)
//   --faults SPEC       seeded chaos on the delivery path, e.g.
//                       "drop=0.05,dup=0.02,reorder=0.1" or
//                       "corrupt=0.001,norecover" or "crash=2@5"
//                       (keys: drop dup reorder corrupt truncate, with an
//                       optional data./control./result. class prefix;
//                       retries=N backoff=S maxfaults=N seed=N
//                       crash=SITE@ROUND recovery=0|1 norecover — see
//                       runtime/fault.h)
//   --fault-seed S      overrides the fault plan's PRNG seed
//   --serve             REPL over one resident dgs::Server
//   --replicas N        serve mode: concurrent engine replicas     (2)
//   --cache off|candidates|full   serve mode: inter-query cache    (full)
//   --retry N           serve mode: attempts per query (transparent
//                       retry of retryable failures)               (1)
//   --trace-out FILE    record a Chrome trace-event JSON of the whole
//                       session (open in Perfetto / chrome://tracing);
//                       the written file is validated against the span
//                       schema and the exit status reflects it
//   --metrics-out FILE  serve mode: write the final Prometheus text
//                       exposition to FILE after linting the name set
//                       and checking counter monotonicity across two
//                       scrapes
//
// Exit status: 0 when G matches Q (serve mode: always 0 on a clean exit),
// 2 when it does not, 1 on errors.

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "dgs.h"
#include "partition/stats.h"

namespace {

struct CliOptions {
  std::string graph_path;
  std::string pattern_path;
  std::string algorithm = "auto";
  uint32_t sites = 8;
  double vf_ratio = -1;
  uint64_t seed = 2014;
  uint32_t threads = 1;
  std::string wire = "v2";
  dgs::TransportOptions transport;
  bool boolean_only = false;
  bool print_stats = false;
  bool print_matches = false;
  bool serve = false;
  uint32_t replicas = 2;
  std::string cache = "full";
  uint32_t retry_attempts = 1;
  std::string trace_out;    // empty = tracing off
  std::string metrics_out;  // empty = no metrics dump
  std::string faults;  // ParseFaultSpec input; empty = no chaos
  bool has_fault_seed = false;
  uint64_t fault_seed = 0;
};

bool ParseArgs(int argc, char** argv, CliOptions* options) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    if (arg == "--graph") {
      const char* v = next();
      if (!v) return false;
      options->graph_path = v;
    } else if (arg == "--pattern") {
      const char* v = next();
      if (!v) return false;
      options->pattern_path = v;
    } else if (arg == "--algorithm") {
      const char* v = next();
      if (!v) return false;
      options->algorithm = v;
    } else if (arg == "--sites") {
      const char* v = next();
      if (!v) return false;
      options->sites = static_cast<uint32_t>(std::strtoul(v, nullptr, 10));
    } else if (arg == "--vf-ratio") {
      const char* v = next();
      if (!v) return false;
      options->vf_ratio = std::strtod(v, nullptr);
    } else if (arg == "--seed") {
      const char* v = next();
      if (!v) return false;
      options->seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--threads") {
      const char* v = next();
      if (!v) return false;
      options->threads = static_cast<uint32_t>(std::strtoul(v, nullptr, 10));
    } else if (arg == "--wire") {
      const char* v = next();
      if (!v) return false;
      options->wire = v;
      if (options->wire != "v1" && options->wire != "v2") return false;
    } else if (arg == "--transport") {
      const char* v = next();
      if (!v) return false;
      auto parsed = dgs::ParseTransportSpec(v);
      if (!parsed.ok()) {
        std::cerr << "bad --transport value: " << v
                  << " (want loopback|tcp[:procs])\n";
        return false;
      }
      options->transport = std::move(parsed).value();
    } else if (arg == "--boolean") {
      options->boolean_only = true;
    } else if (arg == "--stats") {
      options->print_stats = true;
    } else if (arg == "--matches") {
      options->print_matches = true;
    } else if (arg == "--serve") {
      options->serve = true;
    } else if (arg == "--replicas") {
      const char* v = next();
      if (!v) return false;
      options->replicas = static_cast<uint32_t>(std::strtoul(v, nullptr, 10));
    } else if (arg == "--cache") {
      const char* v = next();
      if (!v) return false;
      options->cache = v;
      if (options->cache != "off" && options->cache != "candidates" &&
          options->cache != "full") {
        return false;
      }
    } else if (arg == "--retry") {
      const char* v = next();
      if (!v) return false;
      options->retry_attempts =
          static_cast<uint32_t>(std::strtoul(v, nullptr, 10));
    } else if (arg == "--trace-out" || arg.rfind("--trace-out=", 0) == 0) {
      if (arg.size() > 12 && arg[11] == '=') {
        options->trace_out = arg.substr(12);
      } else {
        const char* v = next();
        if (!v) return false;
        options->trace_out = v;
      }
      if (options->trace_out.empty()) return false;
    } else if (arg == "--metrics-out" || arg.rfind("--metrics-out=", 0) == 0) {
      if (arg.size() > 14 && arg[13] == '=') {
        options->metrics_out = arg.substr(14);
      } else {
        const char* v = next();
        if (!v) return false;
        options->metrics_out = v;
      }
      if (options->metrics_out.empty()) return false;
    } else if (arg == "--faults") {
      const char* v = next();
      if (!v) return false;
      options->faults = v;
    } else if (arg == "--fault-seed") {
      const char* v = next();
      if (!v) return false;
      options->has_fault_seed = true;
      options->fault_seed = std::strtoull(v, nullptr, 10);
    } else {
      std::cerr << "unknown option: " << arg << "\n";
      return false;
    }
  }
  // Serve mode deploys first and reads patterns interactively.
  return !options->graph_path.empty() &&
         (options->serve || !options->pattern_path.empty()) &&
         options->sites > 0;
}

bool PickAlgorithm(const std::string& name, dgs::Algorithm* algorithm) {
  if (name == "auto") *algorithm = dgs::Algorithm::kAuto;
  else if (name == "dgpm") *algorithm = dgs::Algorithm::kDgpm;
  else if (name == "dgpmnoopt") *algorithm = dgs::Algorithm::kDgpmNoOpt;
  else if (name == "dgpmd") *algorithm = dgs::Algorithm::kDgpmDag;
  else if (name == "dgpmt") *algorithm = dgs::Algorithm::kDgpmTree;
  else if (name == "match") *algorithm = dgs::Algorithm::kMatch;
  else if (name == "dishhk") *algorithm = dgs::Algorithm::kDisHhk;
  else if (name == "dmes") *algorithm = dgs::Algorithm::kDMes;
  else return false;
  return true;
}

bool LoadPattern(const std::string& path, dgs::Pattern* pattern) {
  std::ifstream file(path);
  if (!file) {
    std::cerr << "cannot open " << path << "\n";
    return false;
  }
  auto graph = dgs::ReadGraph(file);
  if (!graph.ok()) {
    std::cerr << "bad pattern: " << graph.status().ToString() << "\n";
    return false;
  }
  *pattern = dgs::Pattern(std::move(graph).value());
  return true;
}

void PrintOutcome(const dgs::Pattern& pattern, const dgs::DistOutcome& outcome,
                  bool boolean_only, bool print_matches) {
  const bool matched = outcome.result.GraphMatches();
  std::cout << "G matches Q: " << (matched ? "yes" : "no") << "\n";
  if (!boolean_only) {
    for (dgs::NodeId u = 0; u < pattern.NumNodes(); ++u) {
      auto matches = outcome.result.Matches(u);
      std::cout << "  query node " << u << ": " << matches.size()
                << " matches";
      if (print_matches) {
        std::cout << " {";
        for (size_t k = 0; k < matches.size(); ++k) {
          std::cout << (k ? " " : "") << matches[k];
        }
        std::cout << "}";
      }
      std::cout << "\n";
    }
  }
  std::cout << "PT: "
            << dgs::FormatDouble(outcome.response_seconds() * 1e3, 3)
            << " ms, DS: " << dgs::FormatBytes(outcome.data_shipment_bytes())
            << ", rounds: " << outcome.stats.rounds
            << ", truth values shipped: " << outcome.counters.vars_shipped
            << "\n";
}

// "p50/p95/p99 0.4/1.2/3.1 ms (n=17)" — or "n=0" when nothing landed yet.
std::string FormatPercentiles(const dgs::obs::HistogramSnapshot& h) {
  if (h.count() == 0) return "n=0";
  return "p50/p95/p99 " + dgs::FormatDouble(h.QuantileMillis(0.5), 2) + "/" +
         dgs::FormatDouble(h.QuantileMillis(0.95), 2) + "/" +
         dgs::FormatDouble(h.QuantileMillis(0.99), 2) +
         " ms (n=" + std::to_string(h.count()) + ")";
}

void PrintServerStats(const dgs::ServerStats& stats) {
  std::cout << "replicas: " << stats.replicas
            << ", deploy: " << dgs::FormatDouble(stats.deploy_seconds * 1e3, 2)
            << " ms\nqueries: submitted " << stats.submitted << ", served "
            << stats.served << ", failed " << stats.failed << ", rejected "
            << (stats.rejected_overload + stats.rejected_shutdown)
            << ", expired " << stats.expired << ", retries " << stats.retries
            << " (" << stats.retry_successes << " recovered)"
            << "\ncache: result hits "
            << stats.cache_result_hits << ", misses "
            << stats.cache_result_misses << ", label hits "
            << stats.cache_label_hits << ", misses "
            << stats.cache_label_misses << ", resident "
            << dgs::FormatBytes(stats.cache_result_bytes +
                                stats.cache_label_bytes)
            << "\ncumulative DS: " << dgs::FormatBytes(
                stats.cumulative.data_bytes)
            << ", rounds: " << stats.cumulative.rounds
            << "\nupdates: submitted " << stats.updates_submitted
            << ", applied " << stats.updates_applied << ", failed "
            << stats.updates_failed << " (graph version "
            << stats.graph_version << ", edges -"
            << stats.update_edges_deleted << "/+"
            << stats.update_edges_inserted << ", shipped "
            << dgs::FormatBytes(stats.update_cumulative.update_bytes)
            << ")\nsubscriptions: " << stats.subscriptions_active
            << " active, deltas delivered " << stats.sub_deltas_delivered
            << ", dropped " << stats.sub_deltas_dropped
            << "\nlatency: e2e served " << FormatPercentiles(
                stats.latency.e2e_served)
            << "\n         cache hit  " << FormatPercentiles(
                stats.latency.e2e_cache_hit)
            << "\n         queue wait " << FormatPercentiles(
                stats.latency.queue_wait)
            << "\n         run        " << FormatPercentiles(
                stats.latency.run_served)
            << "\n";
}

// "+u,v" inserts the edge (u, v); "-u,v" deletes it.
bool ParseEdgeToken(const std::string& token, dgs::UpdateBatch* batch) {
  if (token.size() < 4 || (token[0] != '+' && token[0] != '-')) return false;
  const char* cursor = token.c_str() + 1;
  char* end = nullptr;
  const unsigned long from = std::strtoul(cursor, &end, 10);
  if (end == cursor || *end != ',') return false;
  cursor = end + 1;
  const unsigned long to = std::strtoul(cursor, &end, 10);
  if (end == cursor || *end != '\0') return false;
  auto& side = token[0] == '+' ? batch->inserts : batch->deletes;
  side.push_back({static_cast<dgs::NodeId>(from),
                  static_cast<dgs::NodeId>(to)});
  return true;
}

size_t CountPairs(const dgs::SimulationResult& result) {
  size_t pairs = 0;
  for (dgs::NodeId u = 0; u < result.NumQueryNodes(); ++u) {
    pairs += result.Matches(u).size();
  }
  return pairs;
}

// Flush the recorder to cli.trace_out and validate the result against the
// span schema plus the spans this session must have produced. Returns
// false (after printing why) when the file is unwritable or invalid, so
// the process exit status gates CI smoke runs.
bool WriteAndValidateTrace(dgs::obs::TraceRecorder* recorder,
                           const CliOptions& cli,
                           const std::vector<std::string>& required_spans) {
  dgs::obs::TraceRecorder::Uninstall();
  const std::string json = recorder->ToJson();
  std::ofstream out(cli.trace_out, std::ios::binary | std::ios::trunc);
  if (!out || !(out << json) || (out.close(), !out)) {
    std::cerr << "cannot write trace to " << cli.trace_out << "\n";
    return false;
  }
  const dgs::Status valid = dgs::obs::ValidateTraceJson(json, required_spans);
  if (!valid.ok()) {
    std::cerr << "trace validation failed: " << valid.ToString() << "\n";
    return false;
  }
  std::cout << "trace: " << recorder->recorded() << " events ("
            << recorder->dropped() << " dropped) -> " << cli.trace_out
            << "\n";
  return true;
}

// Lint the registry's name set, check counter monotonicity across two
// scrapes, and write the second scrape to cli.metrics_out.
bool WriteAndCheckMetrics(const dgs::obs::MetricsRegistry& registry,
                          const CliOptions& cli) {
  const dgs::Status lint = registry.Lint();
  if (!lint.ok()) {
    std::cerr << "metrics lint failed: " << lint.ToString() << "\n";
    return false;
  }
  const std::string before = registry.PrometheusText();
  const std::string after = registry.PrometheusText();
  const dgs::Status mono = dgs::obs::MetricsRegistry::CheckMonotonic(before,
                                                                     after);
  if (!mono.ok()) {
    std::cerr << "metrics monotonicity check failed: " << mono.ToString()
              << "\n";
    return false;
  }
  std::ofstream out(cli.metrics_out, std::ios::binary | std::ios::trunc);
  if (!out || !(out << after) || (out.close(), !out)) {
    std::cerr << "cannot write metrics to " << cli.metrics_out << "\n";
    return false;
  }
  std::cout << "metrics: " << registry.size() << " series -> "
            << cli.metrics_out << "\n";
  return true;
}

// The --serve REPL: deploy once, answer pattern files interactively
// through the resident Server. Reads commands from stdin until EOF/quit.
int RunServeRepl(const dgs::Graph& graph, const dgs::Fragmentation& frag,
                 const CliOptions& cli, dgs::Algorithm default_algorithm,
                 const dgs::FaultPlan& faults,
                 dgs::obs::TraceRecorder* recorder) {
  dgs::ServerOptions options;
  options.engine.num_threads = cli.threads;
  options.engine.wire_format = cli.wire == "v1" ? dgs::WireFormat::kV1Fixed
                                                : dgs::WireFormat::kV2Delta;
  options.engine.faults = faults;
  options.engine.transport = cli.transport;
  options.retry.max_attempts = cli.retry_attempts;
  options.num_replicas = cli.replicas;
  options.cache = cli.cache == "off"          ? dgs::CacheMode::kOff
                  : cli.cache == "candidates" ? dgs::CacheMode::kCandidates
                                              : dgs::CacheMode::kFull;
  auto server = dgs::Server::Create(graph, &frag, options);
  if (!server.ok()) {
    std::cerr << "server deploy failed: " << server.status().ToString()
              << "\n";
    return 1;
  }
  std::cout << "deployed |G| = (" << graph.NumNodes() << ", "
            << graph.NumEdges() << ") over " << frag.NumFragments()
            << " sites; " << (*server)->num_replicas()
            << " replicas, cache " << cli.cache << ", wire " << cli.wire
            << ", threads " << cli.threads << ", transport "
            << dgs::TransportSpecString(cli.transport);
  if (faults.enabled()) {
    std::cout << ", faults " << dgs::FaultPlanToString(faults) << ", retry "
              << cli.retry_attempts;
  }
  std::cout << "\ncommands: match Q.txt [algorithm] | boolean Q.txt "
               "[algorithm] | subscribe Q.txt | subs |\n          update "
               "+u,v -u,v ... | stats | metrics | trace on|off | help | "
               "quit\n";

  dgs::obs::MetricsRegistry registry;
  (*server)->RegisterMetrics(&registry);

  // What actually ran, so the trace validation at exit only demands spans
  // this session must have produced.
  bool did_query = false;
  bool did_update = false;

  // Standing queries registered through `subscribe`, by pattern path.
  std::vector<std::pair<dgs::SubscriptionId, std::string>> subscriptions;
  std::string line;
  while (std::cout << "dgsim> " << std::flush, std::getline(std::cin, line)) {
    std::istringstream tokens(line);
    std::string command;
    if (!(tokens >> command)) continue;
    if (command == "quit" || command == "exit") break;
    if (command == "help") {
      std::cout << "  match Q.txt [algorithm]    evaluate a pattern file\n"
                   "  boolean Q.txt [algorithm]  Boolean query (answer only)\n"
                   "  subscribe Q.txt            standing query: delta after "
                   "every update\n"
                   "  subs                       list subscriptions + match "
                   "counts\n"
                   "  update +u,v -u,v ...       insert/delete edges as one "
                   "atomic batch\n"
                   "  stats                      serving + cache statistics "
                   "(with latency percentiles)\n"
                   "  metrics                    Prometheus text exposition\n"
                   "  trace on|off               start/stop trace recording\n"
                   "  quit                       drain and exit\n";
      continue;
    }
    if (command == "stats") {
      PrintServerStats((*server)->StatsSnapshot());
      continue;
    }
    if (command == "metrics") {
      std::cout << registry.PrometheusText();
      continue;
    }
    if (command == "trace") {
      std::string mode;
      tokens >> mode;
      if (mode == "on") {
        dgs::obs::TraceRecorder::Install(recorder);
        std::cout << "tracing on";
        if (cli.trace_out.empty()) {
          std::cout << " (no --trace-out: events are recorded but no file "
                       "is written at exit)";
        }
        std::cout << "\n";
      } else if (mode == "off") {
        dgs::obs::TraceRecorder::Uninstall();
        std::cout << "tracing off (" << recorder->recorded()
                  << " events recorded, " << recorder->dropped()
                  << " dropped)\n";
      } else {
        std::cerr << "trace needs 'on' or 'off'\n";
      }
      continue;
    }
    if (command == "subscribe") {
      std::string path;
      if (!(tokens >> path)) {
        std::cerr << "subscribe needs a pattern file\n";
        continue;
      }
      dgs::Pattern pattern;
      if (!LoadPattern(path, &pattern)) continue;
      auto id = (*server)->Subscribe(pattern);
      if (!id.ok()) {
        std::cerr << "error: " << id.status().ToString() << "\n";
        continue;
      }
      subscriptions.push_back({*id, path});
      auto snapshot = (*server)->SubscriptionSnapshot(*id);
      std::cout << "subscription " << *id << " (" << path << "): "
                << (snapshot.ok() ? CountPairs(*snapshot) : 0)
                << " match pairs\n";
      continue;
    }
    if (command == "subs") {
      if (subscriptions.empty()) {
        std::cout << "no subscriptions (try 'subscribe Q.txt')\n";
        continue;
      }
      for (const auto& [id, path] : subscriptions) {
        auto snapshot = (*server)->SubscriptionSnapshot(id);
        std::cout << "  subscription " << id << " (" << path << "): ";
        if (snapshot.ok()) {
          std::cout << CountPairs(*snapshot) << " match pairs, G matches Q: "
                    << (snapshot->GraphMatches() ? "yes" : "no") << "\n";
        } else {
          std::cout << snapshot.status().ToString() << "\n";
        }
      }
      continue;
    }
    if (command == "update") {
      dgs::UpdateBatch batch;
      std::string token;
      bool parsed = true;
      while (tokens >> token) {
        if (!ParseEdgeToken(token, &batch)) {
          std::cerr << "bad edge '" << token << "' (want +u,v or -u,v)\n";
          parsed = false;
          break;
        }
      }
      if (!parsed) continue;
      if (batch.empty()) {
        std::cerr << "update needs at least one +u,v or -u,v edge\n";
        continue;
      }
      auto outcome = (*server)->Update(batch);
      if (!outcome.ok()) {
        std::cerr << "update failed: " << outcome.status().ToString()
                  << "\n(nothing was applied; the same batch can be "
                     "resubmitted)\n";
        continue;
      }
      did_update = true;
      std::cout << "version " << outcome->version << ": -"
                << outcome->edges_deleted << "/+" << outcome->edges_inserted
                << " edges, " << dgs::FormatBytes(outcome->stats.update_bytes)
                << " shipped in " << outcome->stats.update_messages
                << " update messages, " << outcome->cache_invalidated
                << " memoized results invalidated\n";
      for (const auto& [id, path] : subscriptions) {
        bool lagged = false;
        auto deltas = (*server)->PollDeltas(id, &lagged);
        if (!deltas.ok()) continue;
        for (const dgs::SubscriptionDelta& delta : *deltas) {
          std::cout << "  subscription " << id << " v" << delta.version
                    << ": +" << delta.added.size() << "/-"
                    << delta.removed.size() << " pairs\n";
        }
        if (lagged) {
          std::cout << "  subscription " << id << ": lagged (queue "
                       "overflowed; 'subs' shows the full current result)\n";
        }
      }
      continue;
    }
    if (command != "match" && command != "boolean") {
      std::cerr << "unknown command: " << command << " (try 'help')\n";
      continue;
    }
    std::string path, algorithm_name;
    if (!(tokens >> path)) {
      std::cerr << command << " needs a pattern file\n";
      continue;
    }
    dgs::Algorithm algorithm = default_algorithm;
    if (tokens >> algorithm_name &&
        !PickAlgorithm(algorithm_name, &algorithm)) {
      std::cerr << "unknown algorithm: " << algorithm_name << "\n";
      continue;
    }
    dgs::Pattern pattern;
    if (!LoadPattern(path, &pattern)) continue;

    dgs::QueryOptions query;
    query.algorithm = algorithm;
    query.boolean_only = command == "boolean";
    const uint64_t hits_before = (*server)->stats().cache_result_hits;
    auto outcome = (*server)->Match(pattern, query);
    if (!outcome.ok()) {
      std::cerr << "error: " << outcome.status().ToString() << "\n";
      continue;
    }
    did_query = true;
    const bool cached = (*server)->stats().cache_result_hits > hits_before;
    PrintOutcome(pattern, *outcome, query.boolean_only, cli.print_matches);
    if (cached) std::cout << "(served from the result cache)\n";
  }
  (*server)->Shutdown();
  std::cout << "\n== final serving statistics ==\n";
  PrintServerStats((*server)->StatsSnapshot());

  int exit_code = 0;
  if (!cli.metrics_out.empty() && !WriteAndCheckMetrics(registry, cli)) {
    exit_code = 1;
  }
  if (!cli.trace_out.empty()) {
    // Only demand spans this session's commands must have produced. The
    // first successful query is never a cache hit, so any served query
    // implies a full engine run (bind -> rounds -> site compute).
    std::vector<std::string> required;
    if (did_query) {
      required.insert(required.end(),
                      {"server.admission", "server.query", "engine.match",
                       "cluster.round", "site.compute"});
      if (cli.transport.kind == dgs::TransportKind::kTcp) {
        required.push_back("transport.frame");
      }
    }
    if (did_update) required.push_back("dyn.update");
    if (!WriteAndValidateTrace(recorder, cli, required)) exit_code = 1;
  }
  return exit_code;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions cli;
  if (!ParseArgs(argc, argv, &cli)) {
    std::cerr << "usage: dgsim --graph G.txt --pattern Q.txt "
                 "[--algorithm auto] [--sites 8]\n"
                 "             [--vf-ratio R] [--seed S] [--threads N] "
                 "[--wire v1|v2]\n"
                 "             [--transport loopback|tcp[:procs]]\n"
                 "             [--faults SPEC] [--fault-seed S]\n"
                 "             [--boolean] [--stats] [--matches] "
                 "[--trace-out FILE]\n"
                 "       dgsim --graph G.txt --serve [--replicas 2] "
                 "[--cache off|candidates|full]\n"
                 "             [--retry N] [--trace-out FILE] "
                 "[--metrics-out FILE] [common options]\n"
                 "fault SPEC: comma-separated [class.]key=value, e.g.\n"
                 "  --faults drop=0.05,dup=0.02,reorder=0.1   "
                 "(recovered: results unchanged)\n"
                 "  --faults corrupt=0.001                    "
                 "(detected: query fails DataLoss)\n"
                 "  --faults crash=2@5 --retry 3              "
                 "(site 2 dies at round 5; retried)\n";
    return 1;
  }
  dgs::Algorithm algorithm;
  if (!PickAlgorithm(cli.algorithm, &algorithm)) {
    std::cerr << "unknown algorithm: " << cli.algorithm << "\n";
    return 1;
  }
  dgs::FaultPlan fault_plan;
  if (!cli.faults.empty()) {
    auto parsed = dgs::ParseFaultSpec(cli.faults);
    if (!parsed.ok()) {
      std::cerr << "bad --faults: " << parsed.status().ToString() << "\n";
      return 1;
    }
    fault_plan = std::move(parsed).value();
  }
  if (cli.has_fault_seed) fault_plan.seed = cli.fault_seed;
  if (!cli.metrics_out.empty() && !cli.serve) {
    std::cerr << "--metrics-out requires --serve (the metrics registry "
                 "samples a resident server)\n";
    return 1;
  }

  // The recorder outlives everything it could instrument (engines, the
  // server, transports), honoring the trace lifetime contract. Recording
  // starts now when --trace-out is given, so deploy is traced too; the
  // serve REPL can also toggle it with `trace on|off`.
  dgs::obs::TraceRecorder recorder;
  if (!cli.trace_out.empty()) dgs::obs::TraceRecorder::Install(&recorder);

  std::ifstream graph_file(cli.graph_path);
  if (!graph_file) {
    std::cerr << "cannot open " << cli.graph_path << "\n";
    return 1;
  }
  auto graph = dgs::ReadGraph(graph_file);
  if (!graph.ok()) {
    std::cerr << "bad graph: " << graph.status().ToString() << "\n";
    return 1;
  }
  dgs::Pattern pattern;
  if (!cli.serve && !LoadPattern(cli.pattern_path, &pattern)) return 1;

  dgs::Rng rng(cli.seed);
  std::vector<uint32_t> assignment;
  if (cli.vf_ratio > 0) {
    assignment = dgs::PartitionWithBoundaryRatio(*graph, cli.sites,
                                                 cli.vf_ratio, rng);
  } else {
    assignment = dgs::ContiguousPartition(*graph, cli.sites, rng);
  }
  auto fragmentation =
      dgs::Fragmentation::Create(*graph, assignment, cli.sites);
  if (!fragmentation.ok()) {
    std::cerr << "fragmentation failed: "
              << fragmentation.status().ToString() << "\n";
    return 1;
  }
  if (cli.print_stats) {
    std::cout << dgs::ComputePartitionStats(*fragmentation).ToString()
              << "\n";
  }

  if (cli.serve) {
    return RunServeRepl(*graph, *fragmentation, cli, algorithm, fault_plan,
                        &recorder);
  }

  dgs::DistOptions options;
  options.algorithm = algorithm;
  options.boolean_only = cli.boolean_only;
  options.num_threads = cli.threads;
  options.wire_format =
      cli.wire == "v1" ? dgs::WireFormat::kV1Fixed : dgs::WireFormat::kV2Delta;
  options.transport = cli.transport;
  options.faults = fault_plan;
  auto outcome =
      dgs::DistributedMatch(*graph, *fragmentation, pattern, options);
  if (!outcome.ok()) {
    std::cerr << "error: " << outcome.status().ToString() << "\n";
    return 1;
  }

  std::cout << "algorithm: " << cli.algorithm << " over " << cli.sites
            << " sites (wire " << cli.wire << ", threads " << cli.threads
            << ", transport " << dgs::TransportSpecString(cli.transport);
  if (fault_plan.enabled()) {
    std::cout << ", faults " << dgs::FaultPlanToString(fault_plan);
  }
  std::cout << ")\n";
  if (fault_plan.enabled()) {
    const dgs::FaultStats& fs = outcome->faults;
    std::cout << "chaos: " << fs.frames << " frames, " << fs.drops
              << " dropped (" << fs.retransmits << " retransmits, " << fs.lost
              << " lost), " << fs.duplicates_injected << " duplicated, "
              << fs.reorders << " reordered, "
              << (fs.corruptions + fs.truncations) << " corrupted\n";
  }
  if (outcome->transport.processes > 0) {
    const dgs::TransportStats& wire = outcome->transport;
    std::cout << "wire: " << wire.processes << " processes, TX "
              << dgs::FormatBytes(wire.bytes_sent) << ", RX "
              << dgs::FormatBytes(wire.bytes_received) << ", "
              << (wire.frames_sent + wire.frames_received) << " frames, "
              << "launch "
              << dgs::FormatDouble(wire.launch_seconds * 1e3, 2)
              << " ms, io " << dgs::FormatDouble(wire.io_seconds * 1e3, 2)
              << " ms\n";
  }
  PrintOutcome(pattern, *outcome, cli.boolean_only, cli.print_matches);
  if (!cli.trace_out.empty()) {
    std::vector<std::string> required = {"engine.match", "cluster.round",
                                         "site.compute"};
    if (cli.transport.kind == dgs::TransportKind::kTcp) {
      required.push_back("transport.frame");
    }
    if (!WriteAndValidateTrace(&recorder, cli, required)) return 1;
  }
  return outcome->result.GraphMatches() ? 0 : 2;
}
