// dgsim — command-line driver for distributed graph simulation.
//
// Evaluates a pattern file against a graph file (both in the dgs-graph v1
// text format, see graph/io.h) with any of the library's algorithms:
//
//   dgsim --graph G.txt --pattern Q.txt [options]
//
// Options:
//   --algorithm auto|dgpm|dgpmnoopt|dgpmd|dgpmt|match|dishhk|dmes  (auto)
//   --sites N           number of fragments/sites                  (8)
//   --vf-ratio R        target boundary ratio in (0,1); otherwise a
//                       BFS/range partition is used as-is
//   --seed S            RNG seed                                   (2014)
//   --threads N         cluster executor width; 0 = all hardware   (1)
//   --wire v1|v2        wire format: fixed records or delta        (v2)
//   --boolean           Boolean pattern query (answer only)
//   --stats             print partition statistics
//   --matches           print the full match relation (default: counts)
//
// Exit status: 0 when G matches Q, 2 when it does not, 1 on errors.

#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "dgs.h"
#include "partition/stats.h"

namespace {

struct CliOptions {
  std::string graph_path;
  std::string pattern_path;
  std::string algorithm = "auto";
  uint32_t sites = 8;
  double vf_ratio = -1;
  uint64_t seed = 2014;
  uint32_t threads = 1;
  std::string wire = "v2";
  bool boolean_only = false;
  bool print_stats = false;
  bool print_matches = false;
};

bool ParseArgs(int argc, char** argv, CliOptions* options) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    if (arg == "--graph") {
      const char* v = next();
      if (!v) return false;
      options->graph_path = v;
    } else if (arg == "--pattern") {
      const char* v = next();
      if (!v) return false;
      options->pattern_path = v;
    } else if (arg == "--algorithm") {
      const char* v = next();
      if (!v) return false;
      options->algorithm = v;
    } else if (arg == "--sites") {
      const char* v = next();
      if (!v) return false;
      options->sites = static_cast<uint32_t>(std::strtoul(v, nullptr, 10));
    } else if (arg == "--vf-ratio") {
      const char* v = next();
      if (!v) return false;
      options->vf_ratio = std::strtod(v, nullptr);
    } else if (arg == "--seed") {
      const char* v = next();
      if (!v) return false;
      options->seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--threads") {
      const char* v = next();
      if (!v) return false;
      options->threads = static_cast<uint32_t>(std::strtoul(v, nullptr, 10));
    } else if (arg == "--wire") {
      const char* v = next();
      if (!v) return false;
      options->wire = v;
      if (options->wire != "v1" && options->wire != "v2") return false;
    } else if (arg == "--boolean") {
      options->boolean_only = true;
    } else if (arg == "--stats") {
      options->print_stats = true;
    } else if (arg == "--matches") {
      options->print_matches = true;
    } else {
      std::cerr << "unknown option: " << arg << "\n";
      return false;
    }
  }
  return !options->graph_path.empty() && !options->pattern_path.empty() &&
         options->sites > 0;
}

bool PickAlgorithm(const std::string& name, dgs::Algorithm* algorithm) {
  if (name == "auto") *algorithm = dgs::Algorithm::kAuto;
  else if (name == "dgpm") *algorithm = dgs::Algorithm::kDgpm;
  else if (name == "dgpmnoopt") *algorithm = dgs::Algorithm::kDgpmNoOpt;
  else if (name == "dgpmd") *algorithm = dgs::Algorithm::kDgpmDag;
  else if (name == "dgpmt") *algorithm = dgs::Algorithm::kDgpmTree;
  else if (name == "match") *algorithm = dgs::Algorithm::kMatch;
  else if (name == "dishhk") *algorithm = dgs::Algorithm::kDisHhk;
  else if (name == "dmes") *algorithm = dgs::Algorithm::kDMes;
  else return false;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions cli;
  if (!ParseArgs(argc, argv, &cli)) {
    std::cerr << "usage: dgsim --graph G.txt --pattern Q.txt "
                 "[--algorithm auto] [--sites 8]\n"
                 "             [--vf-ratio R] [--seed S] [--threads N] "
                 "[--wire v1|v2]\n"
                 "             [--boolean] [--stats] [--matches]\n";
    return 1;
  }
  dgs::Algorithm algorithm;
  if (!PickAlgorithm(cli.algorithm, &algorithm)) {
    std::cerr << "unknown algorithm: " << cli.algorithm << "\n";
    return 1;
  }

  std::ifstream graph_file(cli.graph_path);
  if (!graph_file) {
    std::cerr << "cannot open " << cli.graph_path << "\n";
    return 1;
  }
  auto graph = dgs::ReadGraph(graph_file);
  if (!graph.ok()) {
    std::cerr << "bad graph: " << graph.status().ToString() << "\n";
    return 1;
  }
  std::ifstream pattern_file(cli.pattern_path);
  if (!pattern_file) {
    std::cerr << "cannot open " << cli.pattern_path << "\n";
    return 1;
  }
  auto pattern_graph = dgs::ReadGraph(pattern_file);
  if (!pattern_graph.ok()) {
    std::cerr << "bad pattern: " << pattern_graph.status().ToString() << "\n";
    return 1;
  }
  dgs::Pattern pattern(std::move(pattern_graph).value());

  dgs::Rng rng(cli.seed);
  std::vector<uint32_t> assignment;
  if (cli.vf_ratio > 0) {
    assignment = dgs::PartitionWithBoundaryRatio(*graph, cli.sites,
                                                 cli.vf_ratio, rng);
  } else {
    assignment = dgs::ContiguousPartition(*graph, cli.sites, rng);
  }
  auto fragmentation =
      dgs::Fragmentation::Create(*graph, assignment, cli.sites);
  if (!fragmentation.ok()) {
    std::cerr << "fragmentation failed: "
              << fragmentation.status().ToString() << "\n";
    return 1;
  }
  if (cli.print_stats) {
    std::cout << dgs::ComputePartitionStats(*fragmentation).ToString()
              << "\n";
  }

  dgs::DistOptions options;
  options.algorithm = algorithm;
  options.boolean_only = cli.boolean_only;
  options.num_threads = cli.threads;
  options.wire_format =
      cli.wire == "v1" ? dgs::WireFormat::kV1Fixed : dgs::WireFormat::kV2Delta;
  auto outcome =
      dgs::DistributedMatch(*graph, *fragmentation, pattern, options);
  if (!outcome.ok()) {
    std::cerr << "error: " << outcome.status().ToString() << "\n";
    return 1;
  }

  const bool matched = outcome->result.GraphMatches();
  std::cout << "algorithm: " << cli.algorithm << " over " << cli.sites
            << " sites (wire " << cli.wire << ", threads " << cli.threads
            << ")\n";
  std::cout << "G matches Q: " << (matched ? "yes" : "no") << "\n";
  if (!cli.boolean_only) {
    for (dgs::NodeId u = 0; u < pattern.NumNodes(); ++u) {
      auto matches = outcome->result.Matches(u);
      std::cout << "  query node " << u << ": " << matches.size()
                << " matches";
      if (cli.print_matches) {
        std::cout << " {";
        for (size_t k = 0; k < matches.size(); ++k) {
          std::cout << (k ? " " : "") << matches[k];
        }
        std::cout << "}";
      }
      std::cout << "\n";
    }
  }
  std::cout << "PT: " << dgs::FormatDouble(outcome->response_seconds() * 1e3, 3)
            << " ms, DS: " << dgs::FormatBytes(outcome->data_shipment_bytes())
            << ", rounds: " << outcome->stats.rounds
            << ", truth values shipped: " << outcome->counters.vars_shipped
            << "\n";
  return matched ? 0 : 2;
}
