// dgsim — command-line driver for distributed graph simulation.
//
// Evaluates a pattern file against a graph file (both in the dgs-graph v1
// text format, see graph/io.h) with any of the library's algorithms:
//
//   dgsim --graph G.txt --pattern Q.txt [options]
//
// or deploys the graph once and serves queries interactively through a
// resident dgs::Server (the paper's deploy-once / query-many model):
//
//   dgsim --graph G.txt --serve [options]
//   dgsim> match Q.txt [algorithm]      evaluate a pattern file
//   dgsim> boolean Q.txt [algorithm]    Boolean query (answer only)
//   dgsim> subscribe Q.txt              standing query: register a pattern
//   dgsim> subs                         list subscriptions + match counts
//   dgsim> update +u,v -u,v ...         mutate the deployed graph: insert
//                                       (+) / delete (-) edges as ONE
//                                       atomic batch
//   dgsim> stats                        serving + cache statistics
//   dgsim> help / quit
//
// A standing-query session looks like:
//
//   dgsim> subscribe Q.txt              -> subscription 1: 42 match pairs
//   dgsim> update -3,17 +3,21           -> version 1: -1/+1 edges; then
//                                          each subscription prints the
//                                          delta the batch caused, e.g.
//                                          "subscription 1 v1: +0/-2 pairs"
//   dgsim> subs                         -> current per-subscription counts
//
// An update either commits everywhere (the version bumps, every
// subscription's delta is delivered, queries see the new graph) or — if
// chaos poisons the replication run — nowhere, and the same batch can be
// resubmitted; see serve/server.h for the delivery semantics.
//
// Options:
//   --algorithm auto|dgpm|dgpmnoopt|dgpmd|dgpmt|match|dishhk|dmes  (auto)
//   --sites N           number of fragments/sites                  (8)
//   --vf-ratio R        target boundary ratio in (0,1); otherwise a
//                       BFS/range partition is used as-is
//   --seed S            RNG seed                                   (2014)
//   --threads N         cluster executor width; 0 = all hardware   (1)
//   --wire v1|v2        wire format: fixed records or delta        (v2)
//   --transport loopback|tcp[:procs]
//                       round-execution backend: in-process, or one OS
//                       process per site-group over TCP; results and
//                       charged accounting are identical, tcp reports the
//                       measured socket traffic alongside     (loopback)
//   --boolean           Boolean pattern query (answer only)
//   --stats             print partition statistics
//   --matches           print the full match relation (default: counts)
//   --faults SPEC       seeded chaos on the delivery path, e.g.
//                       "drop=0.05,dup=0.02,reorder=0.1" or
//                       "corrupt=0.001,norecover" or "crash=2@5"
//                       (keys: drop dup reorder corrupt truncate, with an
//                       optional data./control./result. class prefix;
//                       retries=N backoff=S maxfaults=N seed=N
//                       crash=SITE@ROUND recovery=0|1 norecover — see
//                       runtime/fault.h)
//   --fault-seed S      overrides the fault plan's PRNG seed
//   --serve             REPL over one resident dgs::Server
//   --replicas N        serve mode: concurrent engine replicas     (2)
//   --cache off|candidates|full   serve mode: inter-query cache    (full)
//   --retry N           serve mode: attempts per query (transparent
//                       retry of retryable failures)               (1)
//
// Exit status: 0 when G matches Q (serve mode: always 0 on a clean exit),
// 2 when it does not, 1 on errors.

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "dgs.h"
#include "partition/stats.h"

namespace {

struct CliOptions {
  std::string graph_path;
  std::string pattern_path;
  std::string algorithm = "auto";
  uint32_t sites = 8;
  double vf_ratio = -1;
  uint64_t seed = 2014;
  uint32_t threads = 1;
  std::string wire = "v2";
  dgs::TransportOptions transport;
  bool boolean_only = false;
  bool print_stats = false;
  bool print_matches = false;
  bool serve = false;
  uint32_t replicas = 2;
  std::string cache = "full";
  uint32_t retry_attempts = 1;
  std::string faults;  // ParseFaultSpec input; empty = no chaos
  bool has_fault_seed = false;
  uint64_t fault_seed = 0;
};

bool ParseArgs(int argc, char** argv, CliOptions* options) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    if (arg == "--graph") {
      const char* v = next();
      if (!v) return false;
      options->graph_path = v;
    } else if (arg == "--pattern") {
      const char* v = next();
      if (!v) return false;
      options->pattern_path = v;
    } else if (arg == "--algorithm") {
      const char* v = next();
      if (!v) return false;
      options->algorithm = v;
    } else if (arg == "--sites") {
      const char* v = next();
      if (!v) return false;
      options->sites = static_cast<uint32_t>(std::strtoul(v, nullptr, 10));
    } else if (arg == "--vf-ratio") {
      const char* v = next();
      if (!v) return false;
      options->vf_ratio = std::strtod(v, nullptr);
    } else if (arg == "--seed") {
      const char* v = next();
      if (!v) return false;
      options->seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--threads") {
      const char* v = next();
      if (!v) return false;
      options->threads = static_cast<uint32_t>(std::strtoul(v, nullptr, 10));
    } else if (arg == "--wire") {
      const char* v = next();
      if (!v) return false;
      options->wire = v;
      if (options->wire != "v1" && options->wire != "v2") return false;
    } else if (arg == "--transport") {
      const char* v = next();
      if (!v) return false;
      auto parsed = dgs::ParseTransportSpec(v);
      if (!parsed.ok()) {
        std::cerr << "bad --transport value: " << v
                  << " (want loopback|tcp[:procs])\n";
        return false;
      }
      options->transport = std::move(parsed).value();
    } else if (arg == "--boolean") {
      options->boolean_only = true;
    } else if (arg == "--stats") {
      options->print_stats = true;
    } else if (arg == "--matches") {
      options->print_matches = true;
    } else if (arg == "--serve") {
      options->serve = true;
    } else if (arg == "--replicas") {
      const char* v = next();
      if (!v) return false;
      options->replicas = static_cast<uint32_t>(std::strtoul(v, nullptr, 10));
    } else if (arg == "--cache") {
      const char* v = next();
      if (!v) return false;
      options->cache = v;
      if (options->cache != "off" && options->cache != "candidates" &&
          options->cache != "full") {
        return false;
      }
    } else if (arg == "--retry") {
      const char* v = next();
      if (!v) return false;
      options->retry_attempts =
          static_cast<uint32_t>(std::strtoul(v, nullptr, 10));
    } else if (arg == "--faults") {
      const char* v = next();
      if (!v) return false;
      options->faults = v;
    } else if (arg == "--fault-seed") {
      const char* v = next();
      if (!v) return false;
      options->has_fault_seed = true;
      options->fault_seed = std::strtoull(v, nullptr, 10);
    } else {
      std::cerr << "unknown option: " << arg << "\n";
      return false;
    }
  }
  // Serve mode deploys first and reads patterns interactively.
  return !options->graph_path.empty() &&
         (options->serve || !options->pattern_path.empty()) &&
         options->sites > 0;
}

bool PickAlgorithm(const std::string& name, dgs::Algorithm* algorithm) {
  if (name == "auto") *algorithm = dgs::Algorithm::kAuto;
  else if (name == "dgpm") *algorithm = dgs::Algorithm::kDgpm;
  else if (name == "dgpmnoopt") *algorithm = dgs::Algorithm::kDgpmNoOpt;
  else if (name == "dgpmd") *algorithm = dgs::Algorithm::kDgpmDag;
  else if (name == "dgpmt") *algorithm = dgs::Algorithm::kDgpmTree;
  else if (name == "match") *algorithm = dgs::Algorithm::kMatch;
  else if (name == "dishhk") *algorithm = dgs::Algorithm::kDisHhk;
  else if (name == "dmes") *algorithm = dgs::Algorithm::kDMes;
  else return false;
  return true;
}

bool LoadPattern(const std::string& path, dgs::Pattern* pattern) {
  std::ifstream file(path);
  if (!file) {
    std::cerr << "cannot open " << path << "\n";
    return false;
  }
  auto graph = dgs::ReadGraph(file);
  if (!graph.ok()) {
    std::cerr << "bad pattern: " << graph.status().ToString() << "\n";
    return false;
  }
  *pattern = dgs::Pattern(std::move(graph).value());
  return true;
}

void PrintOutcome(const dgs::Pattern& pattern, const dgs::DistOutcome& outcome,
                  bool boolean_only, bool print_matches) {
  const bool matched = outcome.result.GraphMatches();
  std::cout << "G matches Q: " << (matched ? "yes" : "no") << "\n";
  if (!boolean_only) {
    for (dgs::NodeId u = 0; u < pattern.NumNodes(); ++u) {
      auto matches = outcome.result.Matches(u);
      std::cout << "  query node " << u << ": " << matches.size()
                << " matches";
      if (print_matches) {
        std::cout << " {";
        for (size_t k = 0; k < matches.size(); ++k) {
          std::cout << (k ? " " : "") << matches[k];
        }
        std::cout << "}";
      }
      std::cout << "\n";
    }
  }
  std::cout << "PT: "
            << dgs::FormatDouble(outcome.response_seconds() * 1e3, 3)
            << " ms, DS: " << dgs::FormatBytes(outcome.data_shipment_bytes())
            << ", rounds: " << outcome.stats.rounds
            << ", truth values shipped: " << outcome.counters.vars_shipped
            << "\n";
}

void PrintServerStats(const dgs::ServerStats& stats) {
  std::cout << "replicas: " << stats.replicas
            << ", deploy: " << dgs::FormatDouble(stats.deploy_seconds * 1e3, 2)
            << " ms\nqueries: submitted " << stats.submitted << ", served "
            << stats.served << ", failed " << stats.failed << ", rejected "
            << (stats.rejected_overload + stats.rejected_shutdown)
            << ", expired " << stats.expired << ", retries " << stats.retries
            << " (" << stats.retry_successes << " recovered)"
            << "\ncache: result hits "
            << stats.cache_result_hits << ", misses "
            << stats.cache_result_misses << ", label hits "
            << stats.cache_label_hits << ", misses "
            << stats.cache_label_misses << ", resident "
            << dgs::FormatBytes(stats.cache_result_bytes +
                                stats.cache_label_bytes)
            << "\ncumulative DS: " << dgs::FormatBytes(
                stats.cumulative.data_bytes)
            << ", rounds: " << stats.cumulative.rounds
            << "\nupdates: submitted " << stats.updates_submitted
            << ", applied " << stats.updates_applied << ", failed "
            << stats.updates_failed << " (graph version "
            << stats.graph_version << ", edges -"
            << stats.update_edges_deleted << "/+"
            << stats.update_edges_inserted << ", shipped "
            << dgs::FormatBytes(stats.update_cumulative.update_bytes)
            << ")\nsubscriptions: " << stats.subscriptions_active
            << " active, deltas delivered " << stats.sub_deltas_delivered
            << ", dropped " << stats.sub_deltas_dropped << "\n";
}

// "+u,v" inserts the edge (u, v); "-u,v" deletes it.
bool ParseEdgeToken(const std::string& token, dgs::UpdateBatch* batch) {
  if (token.size() < 4 || (token[0] != '+' && token[0] != '-')) return false;
  const char* cursor = token.c_str() + 1;
  char* end = nullptr;
  const unsigned long from = std::strtoul(cursor, &end, 10);
  if (end == cursor || *end != ',') return false;
  cursor = end + 1;
  const unsigned long to = std::strtoul(cursor, &end, 10);
  if (end == cursor || *end != '\0') return false;
  auto& side = token[0] == '+' ? batch->inserts : batch->deletes;
  side.push_back({static_cast<dgs::NodeId>(from),
                  static_cast<dgs::NodeId>(to)});
  return true;
}

size_t CountPairs(const dgs::SimulationResult& result) {
  size_t pairs = 0;
  for (dgs::NodeId u = 0; u < result.NumQueryNodes(); ++u) {
    pairs += result.Matches(u).size();
  }
  return pairs;
}

// The --serve REPL: deploy once, answer pattern files interactively
// through the resident Server. Reads commands from stdin until EOF/quit.
int RunServeRepl(const dgs::Graph& graph, const dgs::Fragmentation& frag,
                 const CliOptions& cli, dgs::Algorithm default_algorithm,
                 const dgs::FaultPlan& faults) {
  dgs::ServerOptions options;
  options.engine.num_threads = cli.threads;
  options.engine.wire_format = cli.wire == "v1" ? dgs::WireFormat::kV1Fixed
                                                : dgs::WireFormat::kV2Delta;
  options.engine.faults = faults;
  options.engine.transport = cli.transport;
  options.retry.max_attempts = cli.retry_attempts;
  options.num_replicas = cli.replicas;
  options.cache = cli.cache == "off"          ? dgs::CacheMode::kOff
                  : cli.cache == "candidates" ? dgs::CacheMode::kCandidates
                                              : dgs::CacheMode::kFull;
  auto server = dgs::Server::Create(graph, &frag, options);
  if (!server.ok()) {
    std::cerr << "server deploy failed: " << server.status().ToString()
              << "\n";
    return 1;
  }
  std::cout << "deployed |G| = (" << graph.NumNodes() << ", "
            << graph.NumEdges() << ") over " << frag.NumFragments()
            << " sites; " << (*server)->num_replicas()
            << " replicas, cache " << cli.cache << ", wire " << cli.wire
            << ", threads " << cli.threads << ", transport "
            << dgs::TransportSpecString(cli.transport);
  if (faults.enabled()) {
    std::cout << ", faults " << dgs::FaultPlanToString(faults) << ", retry "
              << cli.retry_attempts;
  }
  std::cout << "\ncommands: match Q.txt [algorithm] | boolean Q.txt "
               "[algorithm] | subscribe Q.txt | subs |\n          update "
               "+u,v -u,v ... | stats | help | quit\n";

  // Standing queries registered through `subscribe`, by pattern path.
  std::vector<std::pair<dgs::SubscriptionId, std::string>> subscriptions;
  std::string line;
  while (std::cout << "dgsim> " << std::flush, std::getline(std::cin, line)) {
    std::istringstream tokens(line);
    std::string command;
    if (!(tokens >> command)) continue;
    if (command == "quit" || command == "exit") break;
    if (command == "help") {
      std::cout << "  match Q.txt [algorithm]    evaluate a pattern file\n"
                   "  boolean Q.txt [algorithm]  Boolean query (answer only)\n"
                   "  subscribe Q.txt            standing query: delta after "
                   "every update\n"
                   "  subs                       list subscriptions + match "
                   "counts\n"
                   "  update +u,v -u,v ...       insert/delete edges as one "
                   "atomic batch\n"
                   "  stats                      serving + cache statistics\n"
                   "  quit                       drain and exit\n";
      continue;
    }
    if (command == "stats") {
      PrintServerStats((*server)->stats());
      continue;
    }
    if (command == "subscribe") {
      std::string path;
      if (!(tokens >> path)) {
        std::cerr << "subscribe needs a pattern file\n";
        continue;
      }
      dgs::Pattern pattern;
      if (!LoadPattern(path, &pattern)) continue;
      auto id = (*server)->Subscribe(pattern);
      if (!id.ok()) {
        std::cerr << "error: " << id.status().ToString() << "\n";
        continue;
      }
      subscriptions.push_back({*id, path});
      auto snapshot = (*server)->SubscriptionSnapshot(*id);
      std::cout << "subscription " << *id << " (" << path << "): "
                << (snapshot.ok() ? CountPairs(*snapshot) : 0)
                << " match pairs\n";
      continue;
    }
    if (command == "subs") {
      if (subscriptions.empty()) {
        std::cout << "no subscriptions (try 'subscribe Q.txt')\n";
        continue;
      }
      for (const auto& [id, path] : subscriptions) {
        auto snapshot = (*server)->SubscriptionSnapshot(id);
        std::cout << "  subscription " << id << " (" << path << "): ";
        if (snapshot.ok()) {
          std::cout << CountPairs(*snapshot) << " match pairs, G matches Q: "
                    << (snapshot->GraphMatches() ? "yes" : "no") << "\n";
        } else {
          std::cout << snapshot.status().ToString() << "\n";
        }
      }
      continue;
    }
    if (command == "update") {
      dgs::UpdateBatch batch;
      std::string token;
      bool parsed = true;
      while (tokens >> token) {
        if (!ParseEdgeToken(token, &batch)) {
          std::cerr << "bad edge '" << token << "' (want +u,v or -u,v)\n";
          parsed = false;
          break;
        }
      }
      if (!parsed) continue;
      if (batch.empty()) {
        std::cerr << "update needs at least one +u,v or -u,v edge\n";
        continue;
      }
      auto outcome = (*server)->Update(batch);
      if (!outcome.ok()) {
        std::cerr << "update failed: " << outcome.status().ToString()
                  << "\n(nothing was applied; the same batch can be "
                     "resubmitted)\n";
        continue;
      }
      std::cout << "version " << outcome->version << ": -"
                << outcome->edges_deleted << "/+" << outcome->edges_inserted
                << " edges, " << dgs::FormatBytes(outcome->stats.update_bytes)
                << " shipped in " << outcome->stats.update_messages
                << " update messages, " << outcome->cache_invalidated
                << " memoized results invalidated\n";
      for (const auto& [id, path] : subscriptions) {
        bool lagged = false;
        auto deltas = (*server)->PollDeltas(id, &lagged);
        if (!deltas.ok()) continue;
        for (const dgs::SubscriptionDelta& delta : *deltas) {
          std::cout << "  subscription " << id << " v" << delta.version
                    << ": +" << delta.added.size() << "/-"
                    << delta.removed.size() << " pairs\n";
        }
        if (lagged) {
          std::cout << "  subscription " << id << ": lagged (queue "
                       "overflowed; 'subs' shows the full current result)\n";
        }
      }
      continue;
    }
    if (command != "match" && command != "boolean") {
      std::cerr << "unknown command: " << command << " (try 'help')\n";
      continue;
    }
    std::string path, algorithm_name;
    if (!(tokens >> path)) {
      std::cerr << command << " needs a pattern file\n";
      continue;
    }
    dgs::Algorithm algorithm = default_algorithm;
    if (tokens >> algorithm_name &&
        !PickAlgorithm(algorithm_name, &algorithm)) {
      std::cerr << "unknown algorithm: " << algorithm_name << "\n";
      continue;
    }
    dgs::Pattern pattern;
    if (!LoadPattern(path, &pattern)) continue;

    dgs::QueryOptions query;
    query.algorithm = algorithm;
    query.boolean_only = command == "boolean";
    const uint64_t hits_before = (*server)->stats().cache_result_hits;
    auto outcome = (*server)->Match(pattern, query);
    if (!outcome.ok()) {
      std::cerr << "error: " << outcome.status().ToString() << "\n";
      continue;
    }
    const bool cached = (*server)->stats().cache_result_hits > hits_before;
    PrintOutcome(pattern, *outcome, query.boolean_only, cli.print_matches);
    if (cached) std::cout << "(served from the result cache)\n";
  }
  (*server)->Shutdown();
  std::cout << "\n== final serving statistics ==\n";
  PrintServerStats((*server)->stats());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions cli;
  if (!ParseArgs(argc, argv, &cli)) {
    std::cerr << "usage: dgsim --graph G.txt --pattern Q.txt "
                 "[--algorithm auto] [--sites 8]\n"
                 "             [--vf-ratio R] [--seed S] [--threads N] "
                 "[--wire v1|v2]\n"
                 "             [--transport loopback|tcp[:procs]]\n"
                 "             [--faults SPEC] [--fault-seed S]\n"
                 "             [--boolean] [--stats] [--matches]\n"
                 "       dgsim --graph G.txt --serve [--replicas 2] "
                 "[--cache off|candidates|full]\n"
                 "             [--retry N] [common options]\n"
                 "fault SPEC: comma-separated [class.]key=value, e.g.\n"
                 "  --faults drop=0.05,dup=0.02,reorder=0.1   "
                 "(recovered: results unchanged)\n"
                 "  --faults corrupt=0.001                    "
                 "(detected: query fails DataLoss)\n"
                 "  --faults crash=2@5 --retry 3              "
                 "(site 2 dies at round 5; retried)\n";
    return 1;
  }
  dgs::Algorithm algorithm;
  if (!PickAlgorithm(cli.algorithm, &algorithm)) {
    std::cerr << "unknown algorithm: " << cli.algorithm << "\n";
    return 1;
  }
  dgs::FaultPlan fault_plan;
  if (!cli.faults.empty()) {
    auto parsed = dgs::ParseFaultSpec(cli.faults);
    if (!parsed.ok()) {
      std::cerr << "bad --faults: " << parsed.status().ToString() << "\n";
      return 1;
    }
    fault_plan = std::move(parsed).value();
  }
  if (cli.has_fault_seed) fault_plan.seed = cli.fault_seed;

  std::ifstream graph_file(cli.graph_path);
  if (!graph_file) {
    std::cerr << "cannot open " << cli.graph_path << "\n";
    return 1;
  }
  auto graph = dgs::ReadGraph(graph_file);
  if (!graph.ok()) {
    std::cerr << "bad graph: " << graph.status().ToString() << "\n";
    return 1;
  }
  dgs::Pattern pattern;
  if (!cli.serve && !LoadPattern(cli.pattern_path, &pattern)) return 1;

  dgs::Rng rng(cli.seed);
  std::vector<uint32_t> assignment;
  if (cli.vf_ratio > 0) {
    assignment = dgs::PartitionWithBoundaryRatio(*graph, cli.sites,
                                                 cli.vf_ratio, rng);
  } else {
    assignment = dgs::ContiguousPartition(*graph, cli.sites, rng);
  }
  auto fragmentation =
      dgs::Fragmentation::Create(*graph, assignment, cli.sites);
  if (!fragmentation.ok()) {
    std::cerr << "fragmentation failed: "
              << fragmentation.status().ToString() << "\n";
    return 1;
  }
  if (cli.print_stats) {
    std::cout << dgs::ComputePartitionStats(*fragmentation).ToString()
              << "\n";
  }

  if (cli.serve) {
    return RunServeRepl(*graph, *fragmentation, cli, algorithm, fault_plan);
  }

  dgs::DistOptions options;
  options.algorithm = algorithm;
  options.boolean_only = cli.boolean_only;
  options.num_threads = cli.threads;
  options.wire_format =
      cli.wire == "v1" ? dgs::WireFormat::kV1Fixed : dgs::WireFormat::kV2Delta;
  options.transport = cli.transport;
  options.faults = fault_plan;
  auto outcome =
      dgs::DistributedMatch(*graph, *fragmentation, pattern, options);
  if (!outcome.ok()) {
    std::cerr << "error: " << outcome.status().ToString() << "\n";
    return 1;
  }

  std::cout << "algorithm: " << cli.algorithm << " over " << cli.sites
            << " sites (wire " << cli.wire << ", threads " << cli.threads
            << ", transport " << dgs::TransportSpecString(cli.transport);
  if (fault_plan.enabled()) {
    std::cout << ", faults " << dgs::FaultPlanToString(fault_plan);
  }
  std::cout << ")\n";
  if (fault_plan.enabled()) {
    const dgs::FaultStats& fs = outcome->faults;
    std::cout << "chaos: " << fs.frames << " frames, " << fs.drops
              << " dropped (" << fs.retransmits << " retransmits, " << fs.lost
              << " lost), " << fs.duplicates_injected << " duplicated, "
              << fs.reorders << " reordered, "
              << (fs.corruptions + fs.truncations) << " corrupted\n";
  }
  if (outcome->transport.processes > 0) {
    const dgs::TransportStats& wire = outcome->transport;
    std::cout << "wire: " << wire.processes << " processes, TX "
              << dgs::FormatBytes(wire.bytes_sent) << ", RX "
              << dgs::FormatBytes(wire.bytes_received) << ", "
              << (wire.frames_sent + wire.frames_received) << " frames, "
              << "launch "
              << dgs::FormatDouble(wire.launch_seconds * 1e3, 2)
              << " ms, io " << dgs::FormatDouble(wire.io_seconds * 1e3, 2)
              << " ms\n";
  }
  PrintOutcome(pattern, *outcome, cli.boolean_only, cli.print_matches);
  return outcome->result.GraphMatches() ? 0 : 2;
}
