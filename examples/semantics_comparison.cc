// Matching-semantics comparison (Sections 1, 2.1 and Example 3): graph
// simulation vs dual simulation vs strong simulation vs subgraph
// isomorphism, on the paper's two running fixtures.
//
//   - Fig. 1 social graph: simulation finds all potential customers;
//     strong simulation misses yb2; no isomorphic embedding exists at all.
//   - Fig. 2 locality gadget: simulation matches the stretched cycle
//     (requiring whole-cycle information — no data locality); isomorphism
//     and strong simulation decide locally and reject it.
//
//   ./examples/semantics_comparison [--threads N] [--wire v1|v2]
//
// The flags configure the distributed cross-check at the end (simulation
// is the only one of these semantics with a distributed evaluator here).

#include <iostream>

#include "dgs.h"
#include "example_flags.h"

namespace {

std::string MatchColumn(const dgs::SimulationResult& r, dgs::NodeId u,
                        const std::vector<std::string>& names) {
  if (!r.GraphMatches()) return "-";
  std::string out;
  for (dgs::NodeId v : r.Matches(u)) {
    if (!out.empty()) out += " ";
    out += names[v];
  }
  return out.empty() ? "-" : out;
}

}  // namespace

int main(int argc, char** argv) {
  dgs::examples::Flags flags;
  if (!dgs::examples::Flags::Parse(argc, argv, &flags)) return 1;

  auto ex = dgs::MakeSocialExample();
  const char* query_names[] = {"YB", "YF", "F", "SP"};

  std::cout << "=== Fig. 1 social graph: who matches under each "
               "semantics? ===\n\n";
  auto plain = dgs::ComputeSimulation(ex.q, ex.g);
  auto dual = dgs::ComputeDualSimulation(ex.q, ex.g);
  auto strong = dgs::ComputeStrongSimulation(ex.q, ex.g);
  auto iso = dgs::FindSubgraphIsomorphism(ex.q, ex.g);

  dgs::TablePrinter table({"query node", "simulation", "dual simulation",
                           "strong simulation"});
  for (dgs::NodeId u = 0; u < 4; ++u) {
    table.AddRow({query_names[u], MatchColumn(plain, u, ex.node_names),
                  MatchColumn(dual, u, ex.node_names),
                  MatchColumn(strong, u, ex.node_names)});
  }
  table.Print(std::cout);
  std::cout << "subgraph isomorphism: "
            << (iso.has_value() ? "embedding found" : "no embedding exists")
            << " (the Fig. 1 cycle is 'stretched' over nine nodes)\n\n";

  std::cout << "=== Fig. 2 gadget (intact 2n-cycle, n = 8): locality ===\n\n";
  auto gadget = dgs::MakeLocalityGadget(8);
  auto g_plain = dgs::ComputeSimulation(gadget.q, gadget.g);
  auto g_strong = dgs::ComputeStrongSimulation(gadget.q, gadget.g);
  auto g_iso = dgs::FindSubgraphIsomorphism(gadget.q, gadget.g);
  std::cout << "simulation:  matches = " << g_plain.RelationSize()
            << " pairs (needs information from the whole cycle)\n";
  std::cout << "strong sim:  matches = " << g_strong.RelationSize()
            << " pairs (each radius-" << 1
            << " ball decided locally; the stretched cycle fails)\n";
  std::cout << "isomorphism: "
            << (g_iso.has_value() ? "embedding found" : "no embedding")
            << " (Q0's 2-cycle does not occur verbatim; decidable within 2 "
               "hops of any node)\n\n";

  std::cout << "This is Example 3: simulation's extra matching power is "
               "exactly what costs it\ndata locality, and Theorem 1 shows "
               "that cost is unavoidable for any distributed\nalgorithm.\n\n";

  // Distributed cross-check: the simulation column above is exactly what
  // dGPM computes over the 3-site deployment of Fig. 1.
  dgs::DistOptions options;
  options.num_threads = flags.threads;
  options.wire_format = flags.wire;
  auto distributed = dgs::DistributedMatch(ex.g, ex.assignment, 3, ex.q,
                                           options);
  if (!distributed.ok()) {
    std::cerr << "distributed cross-check failed: "
              << distributed.status().ToString() << "\n";
    return 1;
  }
  const bool same = distributed->result == plain;
  std::cout << "distributed dGPM (3 sites, threads "
            << options.num_threads << ", wire "
            << dgs::WireFormatName(options.wire_format)
            << ") agrees with centralized simulation: "
            << (same ? "yes" : "NO") << "\n";
  return same ? 0 : 1;
}
